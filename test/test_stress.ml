(* Repository-scale robustness: large random applications explored end
   to end, with the independent validator as oracle. *)

open Repro_taskgraph
open Repro_arch
module Explorer = Repro_dse.Explorer
module Solution = Repro_dse.Solution
module Annealer = Repro_anneal.Annealer
module Rng = Repro_util.Rng

let big_app () =
  let rng = Rng.create 2024 in
  Generators.layered rng Generators.default_impl_model ~layers:20 ~width:8
    ~edge_probability:0.25 ~mean_sw_time:2.0 ~mean_kbytes:10.0

let platform app =
  ignore app;
  Platform.make ~name:"big"
    ~processor:(Resource.processor "cpu")
    ~rc:(Resource.reconfigurable ~n_clb:1500 ~reconfig_ms_per_clb:0.01 "rc")
    ~bus:Platform.default_bus ()

let test_large_graph_exploration () =
  let app = big_app () in
  Alcotest.(check bool) "substantial instance" true (App.size app >= 60);
  let config =
    {
      Explorer.anneal =
        { Annealer.default_config with iterations = 15_000; seed = 77 };
      moves = Repro_dse.Moves.fixed_architecture;
      objective = Explorer.Makespan;
    }
  in
  let result = Explorer.explore config app (platform app) in
  let all_sw = App.total_sw_time app in
  Alcotest.(check bool)
    (Printf.sprintf "improved >= 25%% over all-software (%.1f -> %.1f)" all_sw
       result.Explorer.best_cost)
    true
    (result.Explorer.best_cost < 0.75 *. all_sw);
  (* The winning schedule passes the independent checker. *)
  match Repro_sched.Validate.evaluated (Solution.spec result.Explorer.best) with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "invalid: %s" (String.concat "; " msgs)

let test_large_graph_invariants_after_walk () =
  let app = big_app () in
  let rng = Rng.create 3 in
  let s = Solution.random (Rng.split rng) app (platform app) in
  for _ = 1 to 3_000 do
    ignore (Repro_dse.Moves.propose rng Repro_dse.Moves.fixed_architecture s)
  done;
  (match Solution.check_invariants s with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "invariants: %s" msg);
  Alcotest.(check bool) "feasible" true (Solution.evaluate s <> None)

let test_wide_app_many_contexts () =
  (* A tiny device forces deep temporal partitioning on a big graph. *)
  let app = big_app () in
  let tiny =
    Platform.make ~name:"tiny"
      ~processor:(Resource.processor "cpu")
      ~rc:(Resource.reconfigurable ~n_clb:150 ~reconfig_ms_per_clb:0.01 "rc")
      ~bus:Platform.default_bus ()
  in
  let config =
    {
      Explorer.anneal =
        { Annealer.default_config with iterations = 8_000; seed = 5 };
      moves = Repro_dse.Moves.fixed_architecture;
      objective = Explorer.Makespan;
    }
  in
  let result = Explorer.explore config app tiny in
  Alcotest.(check bool) "still beats all-software" true
    (result.Explorer.best_cost < App.total_sw_time app);
  match Repro_sched.Validate.evaluated (Solution.spec result.Explorer.best) with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "invalid: %s" (String.concat "; " msgs)

let suite =
  [
    Alcotest.test_case "large graph exploration" `Slow
      test_large_graph_exploration;
    Alcotest.test_case "large graph move walk" `Slow
      test_large_graph_invariants_after_walk;
    Alcotest.test_case "tiny device, many contexts" `Slow
      test_wide_app_many_contexts;
  ]
