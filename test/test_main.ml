let () =
  Alcotest.run "repro"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("bitset", Test_bitset.suite);
      ("pqueue", Test_pqueue.suite);
      ("table/csv", Test_table_csv.suite);
      ("ascii-chart", Test_ascii_chart.suite);
      ("graph", Test_graph.suite);
      ("task/app", Test_task_app.suite);
      ("generators", Test_generators.suite);
      ("sdf", Test_sdf.suite);
      ("app-io", Test_app_io.suite);
      ("dot", Test_dot.suite);
      ("arch", Test_arch.suite);
      ("platform-io", Test_platform_io.suite);
      ("closure", Test_closure.suite);
      ("searchgraph", Test_searchgraph.suite);
      ("validate", Test_validate.suite);
      ("serialized-bus", Test_serialized_bus.suite);
      ("longest-path", Test_longest_path.suite);
      ("multiproc", Test_multiproc.suite);
      ("asic", Test_asic.suite);
      ("periodic", Test_periodic.suite);
      ("multi-mode", Test_multi_mode.suite);
      ("stress", Test_stress.suite);
      ("list-sched", Test_list_sched.suite);
      ("gantt", Test_gantt.suite);
      ("anneal", Test_anneal.suite);
      ("solution", Test_solution.suite);
      ("moves", Test_moves.suite);
      ("explorer", Test_explorer.suite);
      ("baseline", Test_baseline.suite);
      ("combinatorics", Test_combinatorics.suite);
      ("workloads", Test_workloads.suite);
      ("trace", Test_trace.suite);
    ]
