module Chart = Repro_util.Ascii_chart

let lines s = String.split_on_char '\n' s

let test_empty () =
  Alcotest.(check string) "no data" "(no data)\n" (Chart.render []);
  Alcotest.(check string) "empty series" "(no data)\n"
    (Chart.render [ { Chart.marker = '*'; points = [] } ])

let test_single_point () =
  let rendered = Chart.render_one [ (1.0, 5.0) ] in
  Alcotest.(check bool) "contains the marker" true (String.contains rendered '*')

let test_extremes_on_correct_rows () =
  let rendered =
    Chart.render_one ~width:20 ~height:5 [ (0.0, 0.0); (1.0, 10.0) ]
  in
  let rows = lines rendered in
  (* Row 0 carries the max annotation and the high point; the last grid
     row carries the min annotation and the low point. *)
  let top = List.nth rows 0 and bottom = List.nth rows 4 in
  Alcotest.(check bool) "max annotated" true
    (String.length top >= 10 && String.contains top '1');
  Alcotest.(check bool) "high point on top row" true (String.contains top '*');
  Alcotest.(check bool) "low point on bottom row" true
    (String.contains bottom '*')

let test_two_series_markers () =
  let rendered =
    Chart.render ~width:20 ~height:5
      [
        { Chart.marker = 'a'; points = [ (0.0, 0.0); (1.0, 1.0) ] };
        { Chart.marker = 'b'; points = [ (0.0, 1.0); (1.0, 0.0) ] };
      ]
  in
  Alcotest.(check bool) "marker a present" true (String.contains rendered 'a');
  Alcotest.(check bool) "marker b present" true (String.contains rendered 'b')

let test_flat_series () =
  (* Constant series must not divide by zero. *)
  let rendered = Chart.render_one [ (0.0, 3.0); (1.0, 3.0); (2.0, 3.0) ] in
  Alcotest.(check bool) "renders" true (String.contains rendered '*')

let test_size_validation () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Ascii_chart.render: too small") (fun () ->
      ignore (Chart.render ~width:2 ~height:2 []))

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single point" `Quick test_single_point;
    Alcotest.test_case "extremes" `Quick test_extremes_on_correct_rows;
    Alcotest.test_case "two series" `Quick test_two_series_markers;
    Alcotest.test_case "flat series" `Quick test_flat_series;
    Alcotest.test_case "size validation" `Quick test_size_validation;
  ]
