module Graph = Repro_taskgraph.Graph
module Longest_path = Repro_sched.Longest_path
module Rng = Repro_util.Rng

let diamond_weights () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  Graph.add_edge g 1 3;
  Graph.add_edge g 2 3;
  let weights = [| 1.0; 5.0; 2.0; 1.0 |] in
  (g, weights)

let test_create_matches_graph_longest_path () =
  let g, weights = diamond_weights () in
  match
    Longest_path.create g
      ~node_weight:(fun v -> weights.(v))
      ~edge_weight:(fun _ _ -> 0.0)
  with
  | None -> Alcotest.fail "DAG"
  | Some lp ->
    Alcotest.(check (float 1e-9)) "makespan" 7.0 (Longest_path.makespan lp);
    Alcotest.(check (float 1e-9)) "finish 2" 3.0 (Longest_path.finish lp 2)

let test_create_rejects_cycle () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Alcotest.(check bool) "cyclic" true
    (Longest_path.create g ~node_weight:(fun _ -> 1.0)
       ~edge_weight:(fun _ _ -> 0.0)
     = None)

let test_refresh_propagates () =
  let g, weights = diamond_weights () in
  match
    Longest_path.create g
      ~node_weight:(fun v -> weights.(v))
      ~edge_weight:(fun _ _ -> 0.0)
  with
  | None -> Alcotest.fail "DAG"
  | Some lp ->
    weights.(1) <- 0.5;
    Longest_path.refresh lp [ 1 ];
    (* Critical path now goes through node 2: 1 + 2 + 1. *)
    Alcotest.(check (float 1e-9)) "makespan updated" 4.0
      (Longest_path.makespan lp);
    Alcotest.(check (float 1e-9)) "finish 1 updated" 1.5
      (Longest_path.finish lp 1)

let test_refresh_stops_early () =
  (* A long chain behind the changed node: changing the sink must not
     touch the chain. *)
  let n = 50 in
  let g = Graph.create n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  let weights = Array.make n 1.0 in
  match
    Longest_path.create g
      ~node_weight:(fun v -> weights.(v))
      ~edge_weight:(fun _ _ -> 0.0)
  with
  | None -> Alcotest.fail "DAG"
  | Some lp ->
    weights.(n - 1) <- 3.0;
    Longest_path.refresh lp [ n - 1 ];
    Alcotest.(check int) "only the sink re-evaluated" 1
      (Longest_path.touched_last_refresh lp);
    Alcotest.(check (float 1e-9)) "makespan" (float_of_int (n - 1) +. 3.0)
      (Longest_path.makespan lp);
    (* No-op refresh of an unchanged node stops immediately after it. *)
    Longest_path.refresh lp [ 0 ];
    Alcotest.(check int) "unchanged node does not cascade" 1
      (Longest_path.touched_last_refresh lp)

let qcheck_refresh_equals_recompute =
  QCheck.Test.make ~name:"refresh equals full recomputation" ~count:200
    QCheck.(triple small_int (int_range 2 12) (int_range 0 11))
    (fun (seed, n, dirty_raw) ->
      let rng = Rng.create (seed + 1) in
      let g = Graph.create n in
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          if Rng.bernoulli rng 0.3 then Graph.add_edge g u v
        done
      done;
      let weights = Array.init n (fun _ -> Rng.float rng 10.0) in
      match
        Longest_path.create g
          ~node_weight:(fun v -> weights.(v))
          ~edge_weight:(fun _ _ -> 0.0)
      with
      | None -> false
      | Some lp ->
        let dirty = dirty_raw mod n in
        weights.(dirty) <- Rng.float rng 10.0;
        Longest_path.refresh lp [ dirty ];
        (* Reference: independent full solve. *)
        let finish =
          Graph.longest_path g
            ~node_weight:(fun v -> weights.(v))
            ~edge_weight:(fun _ _ -> 0.0)
        in
        Array.for_all
          (fun v -> abs_float (finish.(v) -. Longest_path.finish lp v) < 1e-9)
          (Array.init n Fun.id))

let qcheck_multi_dirty =
  QCheck.Test.make ~name:"refresh with several dirty nodes" ~count:100
    QCheck.(pair small_int (int_range 3 12))
    (fun (seed, n) ->
      let rng = Rng.create (seed + 7) in
      let g = Graph.create n in
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          if Rng.bernoulli rng 0.3 then Graph.add_edge g u v
        done
      done;
      let weights = Array.init n (fun _ -> Rng.float rng 10.0) in
      match
        Longest_path.create g
          ~node_weight:(fun v -> weights.(v))
          ~edge_weight:(fun _ _ -> 0.0)
      with
      | None -> false
      | Some lp ->
        let dirty =
          List.filter (fun _ -> Rng.bernoulli rng 0.4) (List.init n Fun.id)
        in
        List.iter (fun v -> weights.(v) <- Rng.float rng 10.0) dirty;
        Longest_path.refresh lp dirty;
        let finish =
          Graph.longest_path g
            ~node_weight:(fun v -> weights.(v))
            ~edge_weight:(fun _ _ -> 0.0)
        in
        Array.for_all
          (fun v -> abs_float (finish.(v) -. Longest_path.finish lp v) < 1e-9)
          (Array.init n Fun.id))

let qcheck_repeated_refresh_rounds =
  (* The annealing usage pattern: one longest-path state refreshed over
     and over as weights drift.  After every round the state must match
     an independent full solve, and the refresh must never claim to have
     re-evaluated more nodes than the graph holds. *)
  QCheck.Test.make ~name:"repeated refresh rounds track full recomputation"
    ~count:100
    QCheck.(triple small_int (int_range 3 14) (int_range 1 8))
    (fun (seed, n, rounds) ->
      let rng = Rng.create (seed + 13) in
      let g = Graph.create n in
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          if Rng.bernoulli rng 0.25 then Graph.add_edge g u v
        done
      done;
      let weights = Array.init n (fun _ -> Rng.float rng 10.0) in
      match
        Longest_path.create g
          ~node_weight:(fun v -> weights.(v))
          ~edge_weight:(fun _ _ -> 0.0)
      with
      | None -> false
      | Some lp ->
        let ok = ref true in
        for _ = 1 to rounds do
          let dirty =
            List.filter (fun _ -> Rng.bernoulli rng 0.3) (List.init n Fun.id)
          in
          List.iter (fun v -> weights.(v) <- Rng.float rng 10.0) dirty;
          Longest_path.refresh lp dirty;
          if Longest_path.touched_last_refresh lp > Graph.size g then
            ok := false;
          let finish =
            Graph.longest_path g
              ~node_weight:(fun v -> weights.(v))
              ~edge_weight:(fun _ _ -> 0.0)
          in
          let reference_makespan =
            Array.fold_left Float.max 0.0 finish
          in
          if
            abs_float (reference_makespan -. Longest_path.makespan lp) >= 1e-9
            || not
                 (Array.for_all
                    (fun v ->
                      abs_float (finish.(v) -. Longest_path.finish lp v)
                      < 1e-9)
                    (Array.init n Fun.id))
          then ok := false
        done;
        !ok)

let test_insert_edge_reorders () =
  (* Node 2 sits after the chain in the initial order; inserting
     2 -> 0 forces the Pearce-Kelly reordering path. *)
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  let weights = [| 1.0; 1.0; 5.0 |] in
  match
    Longest_path.create g
      ~node_weight:(fun v -> weights.(v))
      ~edge_weight:(fun _ _ -> 0.0)
  with
  | None -> Alcotest.fail "DAG"
  | Some lp ->
    Alcotest.(check bool) "insert accepted" true
      (Longest_path.insert_edge lp 2 0);
    Alcotest.(check bool) "edge present" true (Graph.has_edge g 2 0);
    Longest_path.refresh lp [ 0 ];
    Alcotest.(check (float 1e-9)) "finish 1 via 2" 7.0
      (Longest_path.finish lp 1);
    (* Re-inserting an existing edge is a no-op success. *)
    Alcotest.(check bool) "idempotent" true (Longest_path.insert_edge lp 2 0)

let test_insert_edge_rejects_cycle () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  let weights = [| 1.0; 2.0; 3.0 |] in
  match
    Longest_path.create g
      ~node_weight:(fun v -> weights.(v))
      ~edge_weight:(fun _ _ -> 0.0)
  with
  | None -> Alcotest.fail "DAG"
  | Some lp ->
    let edges_before = Graph.edge_count g in
    Alcotest.(check bool) "cycle rejected" false
      (Longest_path.insert_edge lp 2 0);
    Alcotest.(check bool) "self-loop rejected" false
      (Longest_path.insert_edge lp 1 1);
    Alcotest.(check int) "graph untouched" edges_before (Graph.edge_count g);
    (* The state must still be usable: delete the middle edge and
       check against a fresh reference solve. *)
    Longest_path.delete_edge lp 0 1;
    Longest_path.refresh lp [ 1 ];
    let reference =
      Graph.longest_path g
        ~node_weight:(fun v -> weights.(v))
        ~edge_weight:(fun _ _ -> 0.0)
    in
    Array.iteri
      (fun v r ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "finish %d" v)
          r (Longest_path.finish lp v))
      reference

let qcheck_dynamic_edges =
  (* The structural-move usage pattern: edges come and go and weights
     drift on one live state.  After every operation the state must
     match an independent full solve, and a rejected (cyclic) insertion
     must leave the graph untouched. *)
  QCheck.Test.make ~name:"dynamic edge edits track full recomputation"
    ~count:200
    QCheck.(triple small_int (int_range 3 12) (int_range 1 40))
    (fun (seed, n, ops) ->
      let rng = Rng.create (seed + 29) in
      let g = Graph.create n in
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          if Rng.bernoulli rng 0.2 then Graph.add_edge g u v
        done
      done;
      let weights = Array.init n (fun _ -> Rng.float rng 10.0) in
      match
        Longest_path.create g
          ~node_weight:(fun v -> weights.(v))
          ~edge_weight:(fun _ _ -> 0.0)
      with
      | None -> false
      | Some lp ->
        let ok = ref true in
        for _ = 1 to ops do
          let u = Rng.int rng n and v = Rng.int rng n in
          let dirty =
            if Rng.bernoulli rng 0.5 then
              if u <> v && Graph.has_edge g u v then begin
                Longest_path.delete_edge lp u v;
                [ v ]
              end
              else if Longest_path.insert_edge lp u v then [ v ]
              else begin
                (* Rejected: the edge must not have been added. *)
                if Graph.has_edge g u v then ok := false;
                []
              end
            else begin
              weights.(u) <- Rng.float rng 10.0;
              [ u ]
            end
          in
          Longest_path.refresh lp dirty;
          let reference =
            Graph.longest_path g
              ~node_weight:(fun v -> weights.(v))
              ~edge_weight:(fun _ _ -> 0.0)
          in
          if
            not
              (Array.for_all
                 (fun w ->
                   abs_float (reference.(w) -. Longest_path.finish lp w) < 1e-9)
                 (Array.init n Fun.id))
          then ok := false
        done;
        !ok)

let suite =
  [
    Alcotest.test_case "create matches reference" `Quick
      test_create_matches_graph_longest_path;
    Alcotest.test_case "create rejects cycle" `Quick test_create_rejects_cycle;
    Alcotest.test_case "refresh propagates" `Quick test_refresh_propagates;
    Alcotest.test_case "refresh stops early" `Quick test_refresh_stops_early;
    Alcotest.test_case "insert_edge reorders" `Quick test_insert_edge_reorders;
    Alcotest.test_case "insert_edge rejects cycle" `Quick
      test_insert_edge_rejects_cycle;
    QCheck_alcotest.to_alcotest qcheck_refresh_equals_recompute;
    QCheck_alcotest.to_alcotest qcheck_multi_dirty;
    QCheck_alcotest.to_alcotest qcheck_repeated_refresh_rounds;
    QCheck_alcotest.to_alcotest qcheck_dynamic_edges;
  ]
