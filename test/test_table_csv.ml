module Table = Repro_util.Table
module Csv_out = Repro_util.Csv_out

let test_render_alignment () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check bool) "has header" true
    (List.exists (fun l -> l = "| name  | value |") lines);
  Alcotest.(check bool) "left aligned" true
    (List.exists (fun l -> l = "| alpha |     1 |") lines);
  Alcotest.(check bool) "right aligned" true
    (List.exists (fun l -> l = "| b     |    22 |") lines)

let test_render_separator () =
  let t = Table.create [ ("c", Table.Left) ] in
  Table.add_row t [ "x" ];
  Table.add_separator t;
  Table.add_row t [ "y" ];
  let rendered = Table.render t in
  let rules =
    List.filter
      (fun l -> String.length l > 0 && l.[0] = '+')
      (String.split_on_char '\n' rendered)
  in
  (* top, under-header, mid separator, bottom *)
  Alcotest.(check int) "four rules" 4 (List.length rules)

let test_wrong_arity () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "only one" ])

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1416"
    (Table.cell_float ~decimals:4 3.14159);
  Alcotest.(check string) "int" "42" (Table.cell_int 42)

let with_temp_file f =
  let path = Filename.temp_file "repro_test" ".csv" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_all path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_csv_basic () =
  with_temp_file (fun path ->
      Csv_out.write path ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
      Alcotest.(check string) "content" "a,b\n1,2\n3,4\n" (read_all path))

let test_csv_escaping () =
  with_temp_file (fun path ->
      Csv_out.write path ~header:[ "x" ]
        [ [ "plain" ]; [ "with,comma" ]; [ "with\"quote" ] ];
      Alcotest.(check string) "escaped"
        "x\nplain\n\"with,comma\"\n\"with\"\"quote\"\n" (read_all path))

let test_row_of_floats () =
  Alcotest.(check (list string)) "formatting" [ "1"; "2.5" ]
    (Csv_out.row_of_floats [ 1.0; 2.5 ])

let suite =
  [
    Alcotest.test_case "render alignment" `Quick test_render_alignment;
    Alcotest.test_case "render separator" `Quick test_render_separator;
    Alcotest.test_case "wrong arity" `Quick test_wrong_arity;
    Alcotest.test_case "cell helpers" `Quick test_cells;
    Alcotest.test_case "csv basic" `Quick test_csv_basic;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
    Alcotest.test_case "row_of_floats" `Quick test_row_of_floats;
  ]
