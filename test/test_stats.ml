module Stats = Repro_util.Stats

let checkf = Alcotest.(check (float 1e-9))
let checkf_loose = Alcotest.(check (float 1e-6))

let test_running_empty () =
  let r = Stats.Running.create () in
  Alcotest.(check int) "count" 0 (Stats.Running.count r);
  checkf "mean" 0.0 (Stats.Running.mean r);
  checkf "variance" 0.0 (Stats.Running.variance r)

let test_running_known () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.Running.count r);
  checkf_loose "mean" 5.0 (Stats.Running.mean r);
  checkf_loose "variance" 4.0 (Stats.Running.variance r);
  checkf_loose "stddev" 2.0 (Stats.Running.stddev r);
  checkf "min" 2.0 (Stats.Running.min r);
  checkf "max" 9.0 (Stats.Running.max r)

let test_running_clear () =
  let r = Stats.Running.create () in
  Stats.Running.add r 10.0;
  Stats.Running.clear r;
  Alcotest.(check int) "count reset" 0 (Stats.Running.count r);
  checkf "mean reset" 0.0 (Stats.Running.mean r)

let test_running_single () =
  let r = Stats.Running.create () in
  Stats.Running.add r 3.5;
  checkf "mean" 3.5 (Stats.Running.mean r);
  checkf "variance of single" 0.0 (Stats.Running.variance r)

let test_smoothed_constant () =
  let s = Stats.Smoothed.create ~weight:0.1 in
  for _ = 1 to 50 do
    Stats.Smoothed.add s 4.2
  done;
  checkf_loose "mean of constant" 4.2 (Stats.Smoothed.mean s);
  Alcotest.(check bool) "variance ~ 0" true (Stats.Smoothed.variance s < 1e-9)

let test_smoothed_tracks_shift () =
  let s = Stats.Smoothed.create ~weight:0.2 in
  for _ = 1 to 100 do
    Stats.Smoothed.add s 0.0
  done;
  for _ = 1 to 100 do
    Stats.Smoothed.add s 10.0
  done;
  Alcotest.(check bool) "converged to the new level" true
    (abs_float (Stats.Smoothed.mean s -. 10.0) < 0.1)

let test_smoothed_initialized () =
  let s = Stats.Smoothed.create ~weight:0.5 in
  Alcotest.(check bool) "fresh" false (Stats.Smoothed.initialized s);
  Stats.Smoothed.add s 1.0;
  Alcotest.(check bool) "after one sample" true (Stats.Smoothed.initialized s);
  checkf "mean is the first sample" 1.0 (Stats.Smoothed.mean s)

let test_acceptance_ratio () =
  let a = Stats.Acceptance.create ~weight:0.5 in
  checkf "starts at 1" 1.0 (Stats.Acceptance.ratio a);
  for _ = 1 to 40 do
    Stats.Acceptance.record a false
  done;
  Alcotest.(check bool) "decays towards 0" true (Stats.Acceptance.ratio a < 0.01);
  for _ = 1 to 40 do
    Stats.Acceptance.record a true
  done;
  Alcotest.(check bool) "recovers towards 1" true (Stats.Acceptance.ratio a > 0.99)

let test_list_helpers () =
  checkf "mean empty" 0.0 (Stats.mean []);
  checkf_loose "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkf "stddev short" 0.0 (Stats.stddev [ 5.0 ]);
  checkf_loose "stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]);
  checkf "median empty" 0.0 (Stats.median []);
  checkf "median odd" 3.0 (Stats.median [ 5.0; 3.0; 1.0 ]);
  checkf "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_autocorrelation () =
  let constant = Array.make 32 1.0 in
  checkf "constant series" 0.0 (Stats.autocorrelation constant 1);
  let alternating = Array.init 64 (fun i -> if i mod 2 = 0 then 1.0 else -1.0) in
  Alcotest.(check bool) "alternating lag-1 near -1" true
    (Stats.autocorrelation alternating 1 < -0.9);
  Alcotest.(check bool) "alternating lag-2 near +1" true
    (Stats.autocorrelation alternating 2 > 0.9);
  checkf "lag 0 is defined as 0" 0.0 (Stats.autocorrelation alternating 0);
  checkf "lag beyond length" 0.0 (Stats.autocorrelation alternating 100)

let qcheck_running_matches_direct =
  QCheck.Test.make ~name:"Running mean/stddev match direct computation"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 2 40) (float_range (-100.) 100.))
    (fun xs ->
      let r = Stats.Running.create () in
      List.iter (Stats.Running.add r) xs;
      let direct_mean = Stats.mean xs in
      let direct_dev = Stats.stddev xs in
      abs_float (Stats.Running.mean r -. direct_mean) < 1e-6
      && abs_float (Stats.Running.stddev r -. direct_dev) < 1e-6)

let suite =
  [
    Alcotest.test_case "running empty" `Quick test_running_empty;
    Alcotest.test_case "running known values" `Quick test_running_known;
    Alcotest.test_case "running clear" `Quick test_running_clear;
    Alcotest.test_case "running single" `Quick test_running_single;
    Alcotest.test_case "smoothed constant" `Quick test_smoothed_constant;
    Alcotest.test_case "smoothed tracks shift" `Quick test_smoothed_tracks_shift;
    Alcotest.test_case "smoothed initialized" `Quick test_smoothed_initialized;
    Alcotest.test_case "acceptance ratio" `Quick test_acceptance_ratio;
    Alcotest.test_case "list helpers" `Quick test_list_helpers;
    Alcotest.test_case "autocorrelation" `Quick test_autocorrelation;
    QCheck_alcotest.to_alcotest qcheck_running_matches_direct;
  ]
