open Repro_taskgraph
module Rng = Repro_util.Rng

let model = Generators.default_impl_model

let test_synthesize_impls () =
  let rng = Rng.create 1 in
  let impls = Generators.synthesize_impls rng model ~sw_time:4.0 in
  Alcotest.(check bool) "non-empty" true (impls <> []);
  Alcotest.(check bool) "pareto" true (Task.is_pareto impls);
  List.iter
    (fun i ->
      Alcotest.(check bool) "positive area" true (i.Task.clbs > 0);
      Alcotest.(check bool) "faster than sw" true (i.Task.hw_time < 4.0))
    impls

let test_chain () =
  let rng = Rng.create 2 in
  let app = Generators.chain rng model ~length:10 ~mean_sw_time:2.0
      ~mean_kbytes:5.0 in
  Alcotest.(check int) "size" 10 (App.size app);
  Alcotest.(check bool) "validates" true (App.validate app = Ok ());
  Alcotest.(check int) "chain edges" 9 (List.length (App.edges app));
  (* A chain has no parallelism. *)
  Alcotest.(check (float 1e-9)) "parallelism" 1.0 (App.parallelism app)

let test_chain_bad_length () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "bad length"
    (Invalid_argument "Generators.chain: length < 1") (fun () ->
      ignore (Generators.chain rng model ~length:0 ~mean_sw_time:1.0
                ~mean_kbytes:1.0))

let test_parallel_chains () =
  let rng = Rng.create 4 in
  let app =
    Generators.parallel_chains rng model ~chains:[ 3; 4; 2 ] ~mean_sw_time:2.0
      ~mean_kbytes:5.0
  in
  Alcotest.(check int) "size = chains + source + sink" 11 (App.size app);
  Alcotest.(check bool) "validates" true (App.validate app = Ok ());
  (* Source 0 fans out to 3 chains, sink collects them. *)
  Alcotest.(check int) "source degree" 3
    (Graph.out_degree app.App.graph 0);
  Alcotest.(check int) "sink in-degree" 3
    (Graph.in_degree app.App.graph 10);
  Alcotest.(check bool) "parallelism > 1" true (App.parallelism app > 1.0)

let test_layered () =
  let rng = Rng.create 5 in
  let app =
    Generators.layered rng model ~layers:5 ~width:4 ~edge_probability:0.4
      ~mean_sw_time:1.5 ~mean_kbytes:3.0
  in
  Alcotest.(check bool) "validates" true (App.validate app = Ok ());
  Alcotest.(check bool) "at least one task per layer" true (App.size app >= 5);
  (* Connectivity: every non-first-layer task has a predecessor. *)
  let g = app.App.graph in
  let first_layer_size =
    List.length (List.filter (fun v -> Graph.in_degree g v = 0)
                   (List.init (App.size app) Fun.id))
  in
  Alcotest.(check bool) "only first layer has no preds" true
    (first_layer_size <= 4)

let test_series_parallel () =
  let rng = Rng.create 6 in
  let app =
    Generators.series_parallel rng model ~depth:4 ~mean_sw_time:1.0
      ~mean_kbytes:2.0
  in
  Alcotest.(check bool) "validates" true (App.validate app = Ok ());
  Alcotest.(check bool) "non-trivial" true (App.size app >= 3)

let qcheck_generators_valid =
  QCheck.Test.make ~name:"generated applications always validate" ~count:60
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, depth) ->
      let rng = Rng.create seed in
      let apps =
        [
          Generators.chain rng model ~length:(1 + depth) ~mean_sw_time:1.0
            ~mean_kbytes:1.0;
          Generators.parallel_chains rng model ~chains:[ depth; 2 ]
            ~mean_sw_time:1.0 ~mean_kbytes:1.0;
          Generators.layered rng model ~layers:depth ~width:3
            ~edge_probability:0.5 ~mean_sw_time:1.0 ~mean_kbytes:1.0;
          Generators.series_parallel rng model ~depth ~mean_sw_time:1.0
            ~mean_kbytes:1.0;
        ]
      in
      List.for_all (fun app -> App.validate app = Ok ()) apps)

let suite =
  [
    Alcotest.test_case "synthesize impls" `Quick test_synthesize_impls;
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "chain bad length" `Quick test_chain_bad_length;
    Alcotest.test_case "parallel chains" `Quick test_parallel_chains;
    Alcotest.test_case "layered" `Quick test_layered;
    Alcotest.test_case "series parallel" `Quick test_series_parallel;
    QCheck_alcotest.to_alcotest qcheck_generators_valid;
  ]
