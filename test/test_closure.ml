module Graph = Repro_taskgraph.Graph
module Closure = Repro_sched.Closure
module Bitset = Repro_util.Bitset

let diamond () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  Graph.add_edge g 1 3;
  Graph.add_edge g 2 3;
  g

let test_reaches () =
  let c = Closure.of_graph (diamond ()) in
  Alcotest.(check bool) "0 -> 3" true (Closure.reaches c 0 3);
  Alcotest.(check bool) "1 -> 3" true (Closure.reaches c 1 3);
  Alcotest.(check bool) "3 -> 0" false (Closure.reaches c 3 0);
  Alcotest.(check bool) "1 -> 2 unrelated" false (Closure.reaches c 1 2);
  Alcotest.(check bool) "not reflexive" false (Closure.reaches c 0 0)

let test_would_close_cycle () =
  let c = Closure.of_graph (diamond ()) in
  Alcotest.(check bool) "3 -> 0 closes" true (Closure.would_close_cycle c 3 0);
  Alcotest.(check bool) "self loop closes" true (Closure.would_close_cycle c 1 1);
  Alcotest.(check bool) "1 -> 2 fine" false (Closure.would_close_cycle c 1 2);
  Alcotest.(check bool) "redundant 0 -> 3 fine" false
    (Closure.would_close_cycle c 0 3)

let test_add_edge_updates () =
  let c = Closure.of_graph (diamond ()) in
  Closure.add_edge c 1 2;
  Alcotest.(check bool) "1 -> 2 now" true (Closure.reaches c 1 2);
  Alcotest.(check bool) "0 -> 2 still" true (Closure.reaches c 0 2);
  (* Ancestors of 1 gained nothing new towards 3 (already reachable). *)
  Alcotest.(check bool) "2 -> 1 still impossible" false (Closure.reaches c 2 1)

let test_add_edge_propagates () =
  (* 0->1  2->3, then adding 1->2 must connect 0 to 3. *)
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 2 3;
  let c = Closure.of_graph g in
  Alcotest.(check bool) "0 -/-> 3" false (Closure.reaches c 0 3);
  Closure.add_edge c 1 2;
  Alcotest.(check bool) "0 -> 3 through the new edge" true (Closure.reaches c 0 3);
  Alcotest.(check bool) "0 -> 2" true (Closure.reaches c 0 2);
  Alcotest.(check bool) "1 -> 3" true (Closure.reaches c 1 3)

let test_add_edge_rejects_cycle () =
  let c = Closure.of_graph (diamond ()) in
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Closure.add_edge: closes a cycle") (fun () ->
      Closure.add_edge c 3 0)

let test_of_graph_rejects_cycle () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Alcotest.check_raises "cyclic input"
    (Invalid_argument "Graph.transitive_closure: cyclic graph") (fun () ->
      ignore (Closure.of_graph g))

let test_descendants () =
  let c = Closure.of_graph (diamond ()) in
  Alcotest.(check (list int)) "descendants of 0" [ 1; 2; 3 ]
    (Bitset.to_list (Closure.descendants c 0))

(* Random incremental scenario: build a DAG edge by edge through the
   closure, and compare against a from-scratch closure at the end. *)
let qcheck_incremental_matches_batch =
  let gen =
    QCheck.Gen.(
      int_range 2 10 >>= fun n ->
      let all_pairs =
        List.concat
          (List.init n (fun u -> List.init (n - u - 1) (fun k -> (u, u + k + 1))))
      in
      map (fun picked -> (n, List.filteri (fun i _ -> List.nth picked i) all_pairs))
        (flatten_l (List.map (fun _ -> bool) all_pairs)))
  in
  QCheck.Test.make ~count:300
    ~name:"incremental closure equals batch closure"
    (QCheck.make gen) (fun (n, edges) ->
      let incremental = Closure.of_graph (Graph.create n) in
      let g = Graph.create n in
      List.iter
        (fun (u, v) ->
          if not (Closure.would_close_cycle incremental u v) then begin
            Closure.add_edge incremental u v;
            Graph.add_edge g u v
          end)
        edges;
      let batch = Closure.of_graph g in
      List.for_all
        (fun u ->
          List.for_all
            (fun v -> Closure.reaches incremental u v = Closure.reaches batch u v)
            (List.init n Fun.id))
        (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "reaches" `Quick test_reaches;
    Alcotest.test_case "would_close_cycle" `Quick test_would_close_cycle;
    Alcotest.test_case "add_edge updates" `Quick test_add_edge_updates;
    Alcotest.test_case "add_edge propagates" `Quick test_add_edge_propagates;
    Alcotest.test_case "add_edge rejects cycle" `Quick test_add_edge_rejects_cycle;
    Alcotest.test_case "of_graph rejects cycle" `Quick test_of_graph_rejects_cycle;
    Alcotest.test_case "descendants" `Quick test_descendants;
    QCheck_alcotest.to_alcotest qcheck_incremental_matches_batch;
  ]
