(* Fleet safety: leases, lease-fenced reclaim, campaign manifests, and
   several daemons draining one spool — contention and crash drills. *)

module Atomic_io = Repro_util.Atomic_io
module Clock = Repro_util.Clock
module Fault = Repro_util.Fault
module Json = Repro_util.Json_lite
module Campaign = Repro_serve.Campaign
module Daemon = Repro_serve.Daemon
module Lease = Repro_serve.Lease
module Spool = Repro_serve.Spool

let with_spool f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-fleet-%d-%06x" (Unix.getpid ())
         (Random.bits () land 0xffffff))
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () -> f (Spool.create root))

let enqueue spool name text =
  Atomic_io.write_string (Spool.job_path spool name) text

let tiny_job ?(seed = 2) () =
  Printf.sprintf
    "{\"app\": \"motion_detection\", \"iters\": 150, \"warmup\": 50, \
     \"seed\": %d}"
    seed

let read_result spool name =
  match Atomic_io.read_file (Spool.result_path spool name) with
  | Error msg -> Alcotest.fail msg
  | Ok text -> (
    match Json.parse_obj text with
    | Error msg -> Alcotest.fail msg
    | Ok fields -> fields)

(* The crash drills below simulate dead daemons inside this live test
   process, so the dead-pid shortcut never applies: staleness must
   come from ttl expiry on a deliberately tiny lease. *)
let quiet_config =
  {
    Daemon.default_config with
    Daemon.once = true;
    retries = 0;
    backoff = None;
    poll_interval = 0.01;
    lease_ttl = 0.05;
  }

(* ---- Lease -------------------------------------------------------- *)

let test_lease_ids () =
  let a = Lease.fresh_id () and b = Lease.fresh_id () in
  Alcotest.(check bool) "fresh ids distinct" true (a <> b);
  Alcotest.(check bool) "fresh id validates" true
    (Result.is_ok (Lease.validate_id a));
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (Result.is_error (Lease.validate_id bad)))
    [ ""; ".hidden"; "a/b"; "a b"; "a\nb" ]

let test_lease_lifecycle () =
  with_spool @@ fun spool ->
  let dir = spool.Spool.daemons_dir in
  let lease = Lease.acquire ~id:"unit-d1" ~dir ~ttl:10.0 () in
  Alcotest.(check string) "id honoured" "unit-d1" (Lease.id lease);
  Alcotest.(check int) "acquire writes seq 0" 0 (Lease.seq lease);
  Lease.refresh ~fields:[ ("state", Json.Str "running") ] lease;
  Lease.refresh lease;
  Alcotest.(check int) "refresh bumps seq" 2 (Lease.seq lease);
  (match Lease.load (Lease.path lease) with
   | Error msg -> Alcotest.fail msg
   | Ok (v : Lease.view) ->
     Alcotest.(check string) "file id" "unit-d1" v.Lease.id;
     Alcotest.(check int) "file seq" 2 v.Lease.seq;
     Alcotest.(check bool) "not released" false v.Lease.released;
     Alcotest.(check bool) "fresh lease is alive" true
       (Lease.alive ~now:(Clock.wall ()) v));
  Lease.release ~fields:[ ("state", Json.Str "drained") ] lease;
  match Lease.load (Lease.path lease) with
  | Error msg -> Alcotest.fail msg
  | Ok (v : Lease.view) ->
    Alcotest.(check bool) "released" true v.Lease.released;
    Alcotest.(check bool) "released lease is dead" false
      (Lease.alive ~now:(Clock.wall ()) v);
    Alcotest.(check (option string)) "fields kept as last heartbeat"
      (Some "drained")
      (Json.str_field v.Lease.fields "state")

let test_lease_aliveness () =
  with_spool @@ fun spool ->
  let dir = spool.Spool.daemons_dir in
  let lease = Lease.acquire ~id:"unit-d2" ~dir ~ttl:0.02 () in
  (match Lease.load (Lease.path lease) with
   | Error msg -> Alcotest.fail msg
   | Ok v ->
     Unix.sleepf 0.05;
     Alcotest.(check bool) "expired ttl is dead" false
       (Lease.alive ~now:(Clock.wall ()) v);
     (* A dead pid on this host short-circuits the ttl wait. *)
     let dead_pid = { v with Lease.pid = 0x3ffffffe; updated = Clock.wall () } in
     Alcotest.(check bool) "dead pid is dead even within ttl" false
       (Lease.alive ~now:(Clock.wall ()) dead_pid);
     (* A remote host's pid cannot be probed: ttl alone decides. *)
     let remote = { dead_pid with Lease.host = "elsewhere" } in
     Alcotest.(check bool) "remote host falls back to ttl" true
       (Lease.alive ~now:(Clock.wall ()) remote))

let test_lease_list_skips_damage () =
  with_spool @@ fun spool ->
  let dir = spool.Spool.daemons_dir in
  ignore (Lease.acquire ~id:"ok-d" ~dir ~ttl:5.0 ());
  Atomic_io.write_string (Filename.concat dir "broken.json") "not json";
  let listed = Lease.list ~dir in
  Alcotest.(check int) "both files listed" 2 (List.length listed);
  let oks = List.filter (fun (_, v) -> Result.is_ok v) listed in
  Alcotest.(check int) "one parses" 1 (List.length oks)

(* ---- reclaim rules ------------------------------------------------ *)

let test_reclaim_protects_live_owner () =
  with_spool @@ fun spool ->
  let lease =
    Lease.acquire ~id:"live-d" ~dir:spool.Spool.daemons_dir ~ttl:60.0 ()
  in
  enqueue spool "job.json" "{}";
  Alcotest.(check bool) "claimed" true (Spool.claim ~owner:lease spool "job.json");
  let requeued =
    Spool.reclaim ~self:"someone-else" ~now:(Clock.wall ()) ~grace:0.0 spool
  in
  Alcotest.(check (list string)) "live peer's claim untouched" [] requeued;
  Alcotest.(check (list string)) "still claimed" [ "job.json" ]
    (Spool.in_work spool)

let test_reclaim_requeues_dead_owner () =
  with_spool @@ fun spool ->
  let lease =
    Lease.acquire ~id:"dead-d" ~dir:spool.Spool.daemons_dir ~ttl:0.01 ()
  in
  enqueue spool "job.json" "{}";
  Alcotest.(check bool) "claimed" true (Spool.claim ~owner:lease spool "job.json");
  Atomic_io.write_string (Spool.checkpoint_path spool "job.json") "ckpt";
  Unix.sleepf 0.03;
  let requeued =
    Spool.reclaim ~self:"someone-else" ~now:(Clock.wall ()) ~grace:60.0 spool
  in
  Alcotest.(check (list string)) "dead owner's claim re-queued" [ "job.json" ]
    requeued;
  Alcotest.(check (list string)) "back in the queue" [ "job.json" ]
    (Spool.pending spool);
  Alcotest.(check bool) "checkpoint kept for the resume" true
    (Sys.file_exists (Spool.checkpoint_path spool "job.json"));
  Alcotest.(check bool) "stamp removed" false
    (Sys.file_exists (Spool.claim_stamp_path spool "job.json"))

let test_reclaim_skips_self () =
  with_spool @@ fun spool ->
  let lease =
    Lease.acquire ~id:"self-d" ~dir:spool.Spool.daemons_dir ~ttl:0.01 ()
  in
  enqueue spool "job.json" "{}";
  Alcotest.(check bool) "claimed" true (Spool.claim ~owner:lease spool "job.json");
  Unix.sleepf 0.03;
  (* Even with its lease expired on disk, a daemon never reclaims its
     own in-flight claim. *)
  let requeued =
    Spool.reclaim ~self:"self-d" ~now:(Clock.wall ()) ~grace:0.0 spool
  in
  Alcotest.(check (list string)) "own claim untouched" [] requeued

let test_reclaim_stampless_grace () =
  with_spool @@ fun spool ->
  enqueue spool "job.json" "{}";
  Alcotest.(check bool) "claimed without owner" true
    (Spool.claim spool "job.json");
  let now = Clock.wall () in
  Alcotest.(check (list string)) "young stamp-less claim left alone" []
    (Spool.reclaim ~now ~grace:60.0 spool);
  Alcotest.(check (list string)) "re-queued once past the grace"
    [ "job.json" ]
    (Spool.reclaim ~now:(now +. 120.0) ~grace:60.0 spool)

let test_reclaim_cleans_finished_claim () =
  with_spool @@ fun spool ->
  enqueue spool "job.json" "{}";
  Alcotest.(check bool) "claimed" true (Spool.claim spool "job.json");
  Atomic_io.write_string (Spool.result_path spool "job.json") "{}\n";
  let requeued = Spool.reclaim ~now:(Clock.wall ()) ~grace:0.0 spool in
  Alcotest.(check (list string)) "finished claim is cleanup, not a re-run"
    [] requeued;
  Alcotest.(check (list string)) "claim swept" [] (Spool.in_work spool);
  Alcotest.(check (list string)) "not re-queued" [] (Spool.pending spool)

(* ---- campaign manifests ------------------------------------------- *)

let manifest =
  "{\"campaign\": \"night\", \"jobs\": [\n\
  \  {\"name\": \"n1\", \"app\": \"motion_detection\", \"iters\": 150, \
   \"warmup\": 50, \"seed\": 3},\n\
  \  {\"name\": \"n2\", \"app\": \"motion_detection\", \"iters\": 150, \
   \"warmup\": 50, \"seed\": 4}\n\
   ]}"

let parsed text =
  match Campaign.of_json text with
  | Ok t -> t
  | Error msg -> Alcotest.fail msg

let test_campaign_parse () =
  let t = parsed manifest in
  Alcotest.(check string) "name" "night" t.Campaign.name;
  Alcotest.(check int) "two entries" 2 (List.length t.Campaign.entries);
  Alcotest.(check bool) "default predicate" true
    (t.Campaign.predicate = Campaign.All_filed);
  let e = List.hd t.Campaign.entries in
  Alcotest.(check string) "entry name" "n1" e.Campaign.name;
  Alcotest.(check int) "entry seed parsed" 3 e.Campaign.job.Repro_serve.Job.seed;
  Alcotest.(check bool) "name stripped from the written spec" false
    (Option.is_some
       (Result.bind (Json.parse_obj e.Campaign.text) (fun fields ->
            Option.to_result ~none:"" (Json.find fields "name"))
        |> Result.to_option))

let reject text fragment =
  match Campaign.of_json text with
  | Ok _ -> Alcotest.fail ("accepted: " ^ text)
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%S names the problem (got %S)" fragment msg)
      true (contains msg fragment)

let test_campaign_rejects () =
  reject "{\"jobs\": []}" "no \"campaign\"";
  reject "{\"campaign\": \"c\", \"jobs\": []}" "at least one job";
  reject "{\"campaign\": \"c\"}" "no \"jobs\"";
  reject "{\"campaign\": \"c\", \"typo\": 1, \"jobs\": [{}]}" "unknown campaign field";
  reject
    "{\"campaign\": \"c\", \"complete_when\": \"eventually\", \"jobs\": [{}]}"
    "all-filed|all-results";
  reject "{\"campaign\": \"c\", \"jobs\": [{\"app\": \"sobel\"}]}"
    "declares no \"name\"";
  reject
    "{\"campaign\": \"c\", \"jobs\": [{\"name\": \"a/b\", \"app\": \"sobel\"}]}"
    "letters, digits";
  reject
    ("{\"campaign\": \"c\", \"jobs\": ["
     ^ "{\"name\": \"dup\", \"app\": \"sobel\"},"
     ^ "{\"name\": \"dup\", \"app\": \"sobel\"}]}")
    "appears twice";
  (* A poison entry rejects the manifest whole — nothing half-enqueues. *)
  reject
    "{\"campaign\": \"c\", \"jobs\": [{\"name\": \"p\", \"bogus\": 1}]}"
    "\"p\""

let test_campaign_submit_idempotent () =
  with_spool @@ fun spool ->
  let t = parsed manifest in
  let first = Campaign.submit t spool in
  Alcotest.(check (list string)) "first submit enqueues all"
    [ "n1"; "n2" ] first.Campaign.enqueued;
  let again = Campaign.submit t spool in
  Alcotest.(check (list string)) "re-submit enqueues nothing" []
    again.Campaign.enqueued;
  Alcotest.(check (list string)) "re-submit skips all" [ "n1"; "n2" ]
    again.Campaign.skipped;
  (* A filed job stays done across re-submits; a lost one is re-queued. *)
  Sys.remove (Spool.job_path spool "n1.json");
  Atomic_io.write_string (Spool.result_path spool "n1.json") "{}\n";
  Sys.remove (Spool.job_path spool "n2.json");
  let third = Campaign.submit t spool in
  Alcotest.(check (list string)) "only the lost job re-enqueued" [ "n2" ]
    third.Campaign.enqueued

let test_campaign_report () =
  with_spool @@ fun spool ->
  let t =
    parsed
      ("{\"campaign\": \"pareto\", \"jobs\": [\n"
       ^ "{\"name\": \"small\", \"app\": \"sobel\", \"clbs\": 900},\n"
       ^ "{\"name\": \"mid\", \"app\": \"sobel\", \"clbs\": 1400},\n"
       ^ "{\"name\": \"big\", \"app\": \"sobel\", \"clbs\": 2000},\n"
       ^ "{\"name\": \"bad\", \"app\": \"sobel\", \"clbs\": 2000},\n"
       ^ "{\"name\": \"late\", \"app\": \"sobel\", \"clbs\": 2000}\n"
       ^ "]}")
  in
  let file name json =
    Atomic_io.write_string (Spool.result_path spool (name ^ ".json"))
      (Json.to_string (Json.Obj json) ^ "\n")
  in
  file "small"
    [ ("status", Json.Str "complete"); ("makespan", Json.Num 40.0) ];
  (* Dominated: more CLBs, worse makespan. *)
  file "mid" [ ("status", Json.Str "complete"); ("makespan", Json.Num 45.0) ];
  file "big"
    [ ("status", Json.Str "timed-out"); ("makespan", Json.Num 30.0) ];
  Atomic_io.write_string (Spool.failed_path spool "bad.json") "{}\n";
  Atomic_io.write_string
    (Spool.failed_path spool "bad.reason.json")
    "{\"reason\": \"does not parse\", \"attempts\": 1, \"daemon_id\": \
     \"d0\"}\n";
  enqueue spool "late.json" "{\"app\": \"sobel\"}";
  let report =
    match Campaign.report spool t with
    | Json.Obj fields -> fields
    | _ -> Alcotest.fail "report is not an object"
  in
  let int_field name =
    match Json.int_field report name with
    | Some n -> n
    | None -> Alcotest.fail ("report lost " ^ name)
  in
  Alcotest.(check int) "total" 5 (int_field "total");
  Alcotest.(check int) "queued" 1 (int_field "queued");
  Alcotest.(check int) "completed" 2 (int_field "completed");
  Alcotest.(check int) "timed_out" 1 (int_field "timed_out");
  Alcotest.(check int) "quarantined" 1 (int_field "quarantined");
  Alcotest.(check (option bool)) "a queued job means not done" (Some false)
    (Json.bool_field report "done");
  (match Json.find report "pareto" with
   | Some (Json.Arr points) ->
     let names =
       List.filter_map (function
         | Json.Obj f -> Json.str_field f "job"
         | _ -> None)
         points
     in
     Alcotest.(check (list string))
       "pareto keeps the non-dominated frontier, smallest device first"
       [ "small"; "big" ] names
   | _ -> Alcotest.fail "report lost the pareto set");
  (* With the straggler filed, the default predicate turns done even
     though one job is quarantined. *)
  Sys.remove (Spool.job_path spool "late.json");
  file "late" [ ("status", Json.Str "complete"); ("makespan", Json.Num 50.0) ];
  match Campaign.report spool t with
  | Json.Obj fields ->
    Alcotest.(check (option bool)) "all-filed done" (Some true)
      (Json.bool_field fields "done")
  | _ -> Alcotest.fail "report is not an object"

(* ---- fleet contention --------------------------------------------- *)

let test_fleet_contention () =
  with_spool @@ fun spool ->
  let n = 30 in
  let names =
    List.init n (fun i -> Printf.sprintf "j%02d.json" i)
  in
  List.iteri (fun i name -> enqueue spool name (tiny_job ~seed:(i + 1) ())) names;
  enqueue spool "poison.json" "{\"app\": \"motion_detection\", \"bogus\": 1}";
  let all_names = "poison.json" :: names in
  (* A long ttl: three live daemons racing one queue, nothing may look
     stale, so every claim must land in exactly one outcome through
     rename-contention alone. *)
  let config = { quiet_config with Daemon.lease_ttl = 30.0 } in
  let drain () = Daemon.run config spool in
  let d1 = Domain.spawn drain in
  let d2 = Domain.spawn drain in
  let o3, s3 = drain () in
  let o1, s1 = Domain.join d1 in
  let o2, s2 = Domain.join d2 in
  List.iter
    (fun o ->
      Alcotest.(check string) "daemon drained" "drained" (Daemon.outcome_name o))
    [ o1; o2; o3 ];
  let sum f = f s1 + f s2 + f s3 in
  Printf.eprintf
    "contention sums: claimed %d completed %d quarantined %d requeued %d \
     recovered %d fenced %d fenced_late %d repaired %d\n%!"
    (sum (fun s -> s.Daemon.claimed))
    (sum (fun s -> s.Daemon.completed))
    (sum (fun s -> s.Daemon.quarantined))
    (sum (fun s -> s.Daemon.requeued))
    (sum (fun s -> s.Daemon.recovered))
    (sum (fun s -> s.Daemon.fenced))
    (sum (fun s -> s.Daemon.fenced_late))
    (sum (fun s -> s.Daemon.repaired));
  Alcotest.(check int) "every job claimed exactly once" (n + 1)
    (sum (fun s -> s.Daemon.claimed));
  Alcotest.(check int) "all real jobs completed" n
    (sum (fun s -> s.Daemon.completed));
  Alcotest.(check int) "poison quarantined once" 1
    (sum (fun s -> s.Daemon.quarantined));
  Alcotest.(check int) "nothing re-queued" 0 (sum (fun s -> s.Daemon.requeued));
  Alcotest.(check int) "nothing reclaimed" 0
    (sum (fun s -> s.Daemon.recovered));
  List.iter
    (fun name ->
      let filed = Sys.file_exists (Spool.result_path spool name) in
      let failed = Sys.file_exists (Spool.failed_path spool name) in
      Alcotest.(check bool)
        (Printf.sprintf "%s in exactly one outcome dir" name)
        true (filed <> failed))
    all_names;
  Alcotest.(check int) "queue empty" 0 (Spool.queue_depth spool);
  Alcotest.(check (list string)) "work/ empty" [] (Spool.in_work spool);
  (* Three leases on file, all cleanly released. *)
  let leases = Lease.list ~dir:spool.Spool.daemons_dir in
  Alcotest.(check int) "three leases" 3 (List.length leases);
  List.iter
    (fun (file, view) ->
      match view with
      | Error msg -> Alcotest.fail (file ^ ": " ^ msg)
      | Ok (v : Lease.view) ->
        Alcotest.(check bool) (file ^ " released") true v.Lease.released)
    leases

(* ---- die while holding the lease ---------------------------------- *)

let test_lease_reclaim_drill_bit_identical () =
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  (* An SA engine job: the uniform engine path checkpoints under the
     driver and resumes bit-identically — the property that makes the
     reclaimed re-run equal the uninterrupted one. *)
  let job_text =
    "{\"app\": \"motion_detection\", \"engine\": \"sa\", \"iters\": 2000, \
     \"seed\": 11}"
  in
  let config = { quiet_config with Daemon.checkpoint_every = 50 } in
  let reference =
    with_spool @@ fun spool ->
    enqueue spool "drill.json" job_text;
    ignore (Daemon.run config spool);
    match Json.str_field (read_result spool "drill.json") "solution" with
    | Some crc -> crc
    | None -> Alcotest.fail "reference result lost its solution CRC"
  in
  with_spool @@ fun spool ->
  enqueue spool "drill.json" job_text;
  (* Daemon A dies mid-job — evaluation 600 of the run — with its
     claim stamped, its lease on file and checkpoints flushed. *)
  Fault.arm_point ~site:Fault.Eval ~index:600 ~transient:true;
  (match Daemon.run config spool with
   | _ -> Alcotest.fail "armed eval fault did not crash the daemon"
   | exception Fault.Injected _ -> ());
  Fault.disarm ();
  Alcotest.(check (list string)) "claim left behind" [ "drill.json" ]
    (Spool.in_work spool);
  Alcotest.(check bool) "checkpoint flushed before the crash" true
    (Sys.file_exists (Spool.checkpoint_path spool "drill.json"));
  Alcotest.(check bool) "claim is lease-stamped" true
    (Result.is_ok (Spool.read_claim_stamp spool "drill.json"));
  (* Daemon B starts after A's lease expires: reclaim re-queues the
     orphan with its checkpoint, the re-run resumes and completes. *)
  Unix.sleepf 0.1;
  let outcome, stats = Daemon.run config spool in
  Alcotest.(check string) "peer drained" "drained"
    (Daemon.outcome_name outcome);
  Alcotest.(check int) "orphan reclaimed" 1 stats.Daemon.recovered;
  Alcotest.(check int) "job completed" 1 stats.Daemon.completed;
  let fields = read_result spool "drill.json" in
  Alcotest.(check (option string)) "status complete" (Some "complete")
    (Json.str_field fields "status");
  Alcotest.(check (option string))
    "resumed solution is bit-identical to the uninterrupted run"
    (Some reference)
    (Json.str_field fields "solution");
  Alcotest.(check (list string)) "work/ clean" [] (Spool.in_work spool)

let suite =
  [
    Alcotest.test_case "lease ids are unique and validated" `Quick
      test_lease_ids;
    Alcotest.test_case "lease lifecycle: acquire/refresh/release" `Quick
      test_lease_lifecycle;
    Alcotest.test_case "lease aliveness: ttl, dead pid, remote host" `Quick
      test_lease_aliveness;
    Alcotest.test_case "lease list surfaces damaged files" `Quick
      test_lease_list_skips_damage;
    Alcotest.test_case "reclaim never touches a live peer's claim" `Quick
      test_reclaim_protects_live_owner;
    Alcotest.test_case "reclaim re-queues a dead owner's claim" `Quick
      test_reclaim_requeues_dead_owner;
    Alcotest.test_case "reclaim skips the caller's own claims" `Quick
      test_reclaim_skips_self;
    Alcotest.test_case "stamp-less claims wait out the grace" `Quick
      test_reclaim_stampless_grace;
    Alcotest.test_case "finished claims are cleanup, not re-runs" `Quick
      test_reclaim_cleans_finished_claim;
    Alcotest.test_case "campaign manifest parses" `Quick test_campaign_parse;
    Alcotest.test_case "campaign rejects bad manifests whole" `Quick
      test_campaign_rejects;
    Alcotest.test_case "campaign submit is idempotent" `Quick
      test_campaign_submit_idempotent;
    Alcotest.test_case "campaign report aggregates and finds the frontier"
      `Quick test_campaign_report;
    Alcotest.test_case "three daemons drain one spool without losses" `Slow
      test_fleet_contention;
    Alcotest.test_case "dead daemon's job reclaimed and resumed bit-identically"
      `Slow test_lease_reclaim_drill_bit_identical;
  ]
