(* The malformed-input corpus: every bad fixture must be rejected with
   a one-line error carrying the right line number — never a raw
   exception — and every good fixture must survive a parse ∘ to_string
   round trip unchanged. *)

module App_io = Repro_taskgraph.App_io
module Platform_io = Repro_arch.Platform_io

let fixture name = Filename.concat "fixtures" name

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* [line] is the expected 1-based line of the defect; [None] for
   whole-file errors (missing directives, graph-level validation). *)
let check_bad load name ~line ~message () =
  match load (fixture name) with
  | Ok _ -> Alcotest.failf "%s: expected an error, got Ok" name
  | Error msg ->
    (match line with
     | Some n ->
       let prefix = Printf.sprintf "line %d: " n in
       if not (String.length msg >= String.length prefix
               && String.sub msg 0 (String.length prefix) = prefix)
       then
         Alcotest.failf "%s: expected error at line %d, got %S" name n msg
     | None -> ());
    if not (contains msg message) then
      Alcotest.failf "%s: error %S does not mention %S" name msg message;
    if String.contains msg '\n' then
      Alcotest.failf "%s: error is not one line: %S" name msg

let bad_tg name ~line ~message =
  Alcotest.test_case name `Quick (check_bad App_io.load name ~line ~message)

let bad_plat name ~line ~message =
  Alcotest.test_case name `Quick (check_bad Platform_io.load name ~line ~message)

let check_tg_roundtrip name () =
  match App_io.load (fixture name) with
  | Error msg -> Alcotest.failf "%s: %s" name msg
  | Ok app ->
    let text = App_io.to_string app in
    (match App_io.parse text with
     | Error msg -> Alcotest.failf "%s: reparse failed: %s" name msg
     | Ok app' ->
       Alcotest.(check string) "to_string stable" text (App_io.to_string app'))

let check_plat_roundtrip name () =
  match Platform_io.load (fixture name) with
  | Error msg -> Alcotest.failf "%s: %s" name msg
  | Ok platform ->
    let text = Platform_io.to_string platform in
    (match Platform_io.parse text with
     | Error msg -> Alcotest.failf "%s: reparse failed: %s" name msg
     | Ok platform' ->
       Alcotest.(check string) "to_string stable" text
         (Platform_io.to_string platform'))

let test_missing_file () =
  match App_io.load (fixture "does_not_exist.tg") with
  | Ok _ -> Alcotest.fail "expected an error for a missing file"
  | Error msg ->
    Alcotest.(check bool) "one line" false (String.contains msg '\n')

let suite =
  [
    (* task-graph corpus *)
    bad_tg "bad_dup_app.tg" ~line:(Some 2) ~message:"duplicate app directive";
    bad_tg "bad_task_out_of_order.tg" ~line:(Some 2) ~message:"out of order";
    bad_tg "bad_impl_before_task.tg" ~line:(Some 2)
      ~message:"must directly follow";
    bad_tg "bad_missing_impl.tg" ~line:None ~message:"has no implementation";
    bad_tg "bad_negative_clbs.tg" ~line:(Some 3)
      ~message:"clbs must be positive";
    bad_tg "bad_nan_duration.tg" ~line:(Some 2)
      ~message:"sw time is not finite";
    bad_tg "bad_truncated_task.tg" ~line:(Some 2)
      ~message:"task directive wants";
    bad_tg "bad_edge_endpoint.tg" ~line:None
      ~message:"edge endpoint out of range";
    bad_tg "bad_negative_kbytes.tg" ~line:(Some 6)
      ~message:"edge data must be non-negative";
    bad_tg "bad_unknown_directive.tg" ~line:(Some 2)
      ~message:"unknown directive";
    bad_tg "bad_cycle.tg" ~line:None ~message:"cycle";
    bad_tg "bad_missing_app.tg" ~line:None ~message:"missing app directive";
    bad_tg "bad_zero_deadline.tg" ~line:(Some 2)
      ~message:"deadline must be positive";
    bad_tg "bad_inf_hw_time.tg" ~line:(Some 3)
      ~message:"hw time is not finite";
    (* platform corpus *)
    bad_plat "bad_no_rc.plat" ~line:None ~message:"missing rc directive";
    bad_plat "bad_negative_clbs.plat" ~line:(Some 3) ~message:"n_clb";
    bad_plat "bad_zero_bus_rate.plat" ~line:(Some 4)
      ~message:"bus rate must be positive";
    bad_plat "bad_dup_platform.plat" ~line:(Some 2)
      ~message:"duplicate platform directive";
    bad_plat "bad_dangling_attr.plat" ~line:(Some 2) ~message:"has no value";
    bad_plat "bad_rc_missing_tr.plat" ~line:(Some 3)
      ~message:"rc needs a tr attribute";
    (* good fixtures round-trip *)
    Alcotest.test_case "good_tiny.tg round-trip" `Quick
      (check_tg_roundtrip "good_tiny.tg");
    Alcotest.test_case "good_diamond.tg round-trip" `Quick
      (check_tg_roundtrip "good_diamond.tg");
    Alcotest.test_case "good_board.plat round-trip" `Quick
      (check_plat_roundtrip "good_board.plat");
    Alcotest.test_case "missing file is a one-line error" `Quick
      test_missing_file;
  ]
