module Trace = Repro_dse.Trace

let entry i =
  {
    Trace.iteration = i;
    cost = float_of_int i;
    best = 0.0;
    temperature = 1.0;
    accepted = i mod 2 = 0;
    n_contexts = 1;
  }

let test_record_all () =
  let t = Trace.create () in
  for i = 1 to 10 do
    Trace.record t (entry i)
  done;
  Alcotest.(check int) "all recorded" 10 (Trace.length t);
  let iterations = List.map (fun e -> e.Trace.iteration) (Trace.entries t) in
  Alcotest.(check (list int)) "chronological" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    iterations

let test_every () =
  let t = Trace.create ~every:3 () in
  for i = 0 to 9 do
    Trace.record t (entry i)
  done;
  let iterations = List.map (fun e -> e.Trace.iteration) (Trace.entries t) in
  Alcotest.(check (list int)) "subsampled" [ 0; 3; 6; 9 ] iterations

let test_downsample () =
  let t = Trace.create () in
  for i = 0 to 99 do
    Trace.record t (entry i)
  done;
  let points = Trace.downsample t ~max_points:5 in
  Alcotest.(check int) "5 points" 5 (List.length points);
  let iterations = List.map (fun e -> e.Trace.iteration) points in
  Alcotest.(check bool) "first kept" true (List.hd iterations = 0);
  Alcotest.(check bool) "last kept" true
    (List.nth iterations 4 = 99);
  (* Fewer entries than requested: all returned. *)
  let small = Trace.create () in
  Trace.record small (entry 1);
  Alcotest.(check int) "small trace untouched" 1
    (List.length (Trace.downsample small ~max_points:5))

let test_to_csv () =
  let t = Trace.create () in
  Trace.record t (entry 1);
  Trace.record t (entry 2);
  let path = Filename.temp_file "trace" ".csv" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Trace.to_csv t path;
      let ic = open_in path in
      let header = input_line ic in
      let row1 = input_line ic in
      close_in ic;
      Alcotest.(check string) "header"
        "iteration,cost,best,temperature,accepted,n_contexts" header;
      Alcotest.(check string) "row" "1,1,0,1,0,1" row1)

let test_validation () =
  Alcotest.check_raises "every" (Invalid_argument "Trace.create: every < 1")
    (fun () -> ignore (Trace.create ~every:0 ()));
  let t = Trace.create () in
  Alcotest.check_raises "max_points"
    (Invalid_argument "Trace.downsample: max_points < 2") (fun () ->
      ignore (Trace.downsample t ~max_points:1))

let suite =
  [
    Alcotest.test_case "record all" `Quick test_record_all;
    Alcotest.test_case "every" `Quick test_every;
    Alcotest.test_case "downsample" `Quick test_downsample;
    Alcotest.test_case "to_csv" `Quick test_to_csv;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
