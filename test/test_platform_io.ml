open Repro_arch

let sample =
  "# ARM + DSP + FPGA SoC\n\
   platform arm_dsp_fpga\n\
   processor ARM922 cost 10 speed 1.0\n\
   processor C55x cost 6 speed 1.5\n\
   rc VirtexE clbs 2000 tr 0.0225 cost 20\n\
   asic TurboDec cost 5\n\
   bus rate 80 latency 0.05\n"

let test_parse_sample () =
  match Platform_io.parse sample with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
    Alcotest.(check string) "name" "arm_dsp_fpga" p.Platform.name;
    Alcotest.(check int) "processors" 2 (Platform.processor_count p);
    Alcotest.(check (float 1e-9)) "dsp speed" 1.5 (Platform.processor_speed p 1);
    Alcotest.(check int) "clbs" 2000 (Platform.n_clb p);
    Alcotest.(check (float 1e-9)) "tr" 0.0225
      (Platform.reconfiguration_time p 1);
    Alcotest.(check (float 1e-9)) "cost includes everything" 41.0
      (Platform.total_cost p);
    Alcotest.(check (float 1e-9)) "bus" 1.05 (Platform.transfer_time p 80.0)

let test_defaults () =
  let minimal = "platform p\nprocessor cpu\nrc fpga clbs 100 tr 0.01\nbus rate 50\n" in
  match Platform_io.parse minimal with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
    Alcotest.(check (float 1e-9)) "default costs" 2.0 (Platform.total_cost p);
    Alcotest.(check (float 1e-9)) "default latency" 0.0
      (Platform.transfer_time p 0.0)

let test_roundtrip () =
  match Platform_io.parse sample with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
    (match Platform_io.parse (Platform_io.to_string p) with
     | Error msg -> Alcotest.failf "roundtrip: %s" msg
     | Ok q ->
       Alcotest.(check string) "name" p.Platform.name q.Platform.name;
       Alcotest.(check int) "processors" (Platform.processor_count p)
         (Platform.processor_count q);
       Alcotest.(check (float 1e-9)) "cost" (Platform.total_cost p)
         (Platform.total_cost q);
       Alcotest.(check int) "clbs" (Platform.n_clb p) (Platform.n_clb q))

let expect_error fragment contents =
  match Platform_io.parse contents with
  | Ok _ -> Alcotest.failf "expected an error about %S" fragment
  | Error msg ->
    let contains =
      let n = String.length fragment and h = String.length msg in
      let rec scan i =
        i + n <= h && (String.sub msg i n = fragment || scan (i + 1))
      in
      scan 0
    in
    Alcotest.(check bool) (Printf.sprintf "%S in %S" fragment msg) true contains

let test_errors () =
  expect_error "missing platform" "processor cpu\n";
  expect_error "missing rc" "platform p\nprocessor cpu\nbus rate 10\n";
  expect_error "missing bus" "platform p\nprocessor cpu\nrc f clbs 10 tr 0.1\n";
  expect_error "at least one processor" "platform p\nrc f clbs 10 tr 0.1\nbus rate 10\n";
  expect_error "clbs attribute" "platform p\nprocessor cpu\nrc f tr 0.1\nbus rate 10\n";
  expect_error "no value" "platform p\nprocessor cpu cost\n";
  expect_error "unknown directive" "platform p\nfrob x\n";
  expect_error "not a number" "platform p\nprocessor cpu speed fast\n"

let test_roundtrip_builtin () =
  let p = Repro_workloads.Motion_detection.platform () in
  match Platform_io.parse (Platform_io.to_string p) with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
    Alcotest.(check int) "clbs" (Platform.n_clb p) (Platform.n_clb q)

let suite =
  [
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "roundtrip builtin" `Quick test_roundtrip_builtin;
  ]
