(* Atomic_io and the checkpoint container: crash-safe writes, CRC and
   header validation, corruption and truncation rejection. *)

module Atomic_io = Repro_util.Atomic_io
module Checkpoint = Repro_util.Checkpoint

let temp_path () =
  let path = Filename.temp_file "repro_ckpt" ".tmp" in
  Sys.remove path;
  path

let with_temp f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read path =
  match Atomic_io.read_file path with
  | Ok contents -> contents
  | Error msg -> Alcotest.fail msg

let test_write_read_roundtrip () =
  with_temp @@ fun path ->
  Atomic_io.write_string path "hello\nworld\n";
  Alcotest.(check string) "roundtrip" "hello\nworld\n" (read path);
  Atomic_io.write_string path "second";
  Alcotest.(check string) "overwrite" "second" (read path)

let test_failed_writer_leaves_previous () =
  with_temp @@ fun path ->
  Atomic_io.write_string path "precious";
  (try
     Atomic_io.write_file path (fun oc ->
         output_string oc "partial garbage";
         failwith "writer died")
   with Failure _ -> ());
  Alcotest.(check string) "previous contents intact" "precious" (read path);
  (* And the temporary file was cleaned up. *)
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  Array.iter
    (fun entry ->
      if String.length entry > String.length base
         && String.sub entry 0 (String.length base) = base then
        Alcotest.failf "leftover temporary %s" entry)
    (Sys.readdir dir)

let test_read_missing () =
  match Atomic_io.read_file "/nonexistent/definitely/missing" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg ->
    Alcotest.(check bool) "one line" false (String.contains msg '\n')

let test_crc32_vector () =
  (* The classic IEEE CRC-32 check value. *)
  Alcotest.(check string) "crc32(123456789)" "cbf43926"
    (Checkpoint.crc32_hex "123456789")

let test_save_load_roundtrip () =
  with_temp @@ fun path ->
  let payload = "line one\nline two with \xff bytes\n" in
  Checkpoint.save path ~kind:"test-kind" payload;
  (match Checkpoint.load path ~kind:"test-kind" with
   | Ok got -> Alcotest.(check string) "payload" payload got
   | Error msg -> Alcotest.fail msg);
  (* Empty payloads are legal. *)
  Checkpoint.save path ~kind:"test-kind" "";
  match Checkpoint.load path ~kind:"test-kind" with
  | Ok got -> Alcotest.(check string) "empty payload" "" got
  | Error msg -> Alcotest.fail msg

let expect_error path ~kind what =
  match Checkpoint.load path ~kind with
  | Ok _ -> Alcotest.failf "%s: expected load to fail" what
  | Error msg ->
    Alcotest.(check bool)
      (what ^ ": one-line error") false (String.contains msg '\n')

let test_kind_mismatch () =
  with_temp @@ fun path ->
  Checkpoint.save path ~kind:"dse-run" "payload";
  expect_error path ~kind:"dse-sweep" "wrong kind"

let test_corrupt_payload () =
  with_temp @@ fun path ->
  Checkpoint.save path ~kind:"k" "payload bytes";
  let contents = read path in
  let flipped = Bytes.of_string contents in
  (* Flip a byte inside the payload, after the header line. *)
  let header_end = String.index contents '\n' + 3 in
  Bytes.set flipped header_end
    (Char.chr (Char.code (Bytes.get flipped header_end) lxor 0x20));
  Atomic_io.write_string path (Bytes.to_string flipped);
  expect_error path ~kind:"k" "flipped byte"

let test_truncated () =
  with_temp @@ fun path ->
  Checkpoint.save path ~kind:"k" "a reasonably long payload";
  let contents = read path in
  Atomic_io.write_string path
    (String.sub contents 0 (String.length contents - 5));
  expect_error path ~kind:"k" "truncated"

let test_bad_magic_and_version () =
  with_temp @@ fun path ->
  Atomic_io.write_string path "NOT-A-CKPT 1 k 0 00000000\n";
  expect_error path ~kind:"k" "bad magic";
  Atomic_io.write_string path "REPRO-CKPT 999 k 0 00000000\n";
  expect_error path ~kind:"k" "future version";
  Atomic_io.write_string path "garbage";
  expect_error path ~kind:"k" "no header"

let test_inspect_damage_diagnostics () =
  (* fsck inspects arbitrary bytes claiming to be checkpoints: every
     damage shape must come back as a one-line [Error], never an
     exception — a zero-byte file (a non-atomic writer killed at
     open), a header cut mid-line (truncated at the disk-full mark),
     and a complete header with the payload missing. *)
  List.iter
    (fun (what, bytes) ->
      with_temp @@ fun path ->
      Atomic_io.write_string path bytes;
      match Checkpoint.inspect path with
      | Ok _ -> Alcotest.failf "%s: inspect accepted damage" what
      | Error msg ->
        Alcotest.(check bool) (what ^ ": one-line error") false
          (String.contains msg '\n');
        Alcotest.(check bool) (what ^ ": error names the file") true
          (String.length msg > String.length path
           && String.sub msg 0 (String.length path) = path)
      | exception e ->
        Alcotest.failf "%s: inspect raised %s" what (Printexc.to_string e))
    [
      ("zero-byte file", "");
      ("mid-header truncation", "REPRO-CKPT 1 dse-en");
      ("header only, payload gone", "REPRO-CKPT 1 k 9 00000000\n");
    ];
  (* And the zero-byte shape is told apart from mere header damage. *)
  with_temp @@ fun path ->
  Atomic_io.write_string path "";
  match Checkpoint.inspect path with
  | Error msg ->
    Alcotest.(check string) "empty-file diagnostic"
      (path ^ ": empty checkpoint file") msg
  | Ok _ -> Alcotest.fail "empty file accepted"

let test_invalid_kind_rejected () =
  with_temp @@ fun path ->
  Alcotest.check_raises "space in kind"
    (Invalid_argument "Checkpoint.save: bad kind") (fun () ->
      Checkpoint.save path ~kind:"bad kind" "")

let suite =
  [
    Alcotest.test_case "atomic write/read roundtrip" `Quick
      test_write_read_roundtrip;
    Alcotest.test_case "failed writer leaves previous file" `Quick
      test_failed_writer_leaves_previous;
    Alcotest.test_case "read of missing file" `Quick test_read_missing;
    Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
    Alcotest.test_case "checkpoint save/load roundtrip" `Quick
      test_save_load_roundtrip;
    Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch;
    Alcotest.test_case "corrupt payload rejected" `Quick test_corrupt_payload;
    Alcotest.test_case "truncated file rejected" `Quick test_truncated;
    Alcotest.test_case "bad magic/version rejected" `Quick
      test_bad_magic_and_version;
    Alcotest.test_case "inspect damage diagnostics are one-liners" `Quick
      test_inspect_damage_diagnostics;
    Alcotest.test_case "invalid kind rejected" `Quick
      test_invalid_kind_rejected;
  ]
