open Repro_taskgraph
open Repro_arch
open Repro_sched

let impl clbs hw_time = { Task.clbs; hw_time }

let spec () =
  let t id name sw_time = Task.make ~id ~name ~functionality:"F" ~sw_time
      ~impls:[ impl 20 0.5 ] in
  let app =
    App.make ~name:"g"
      ~tasks:[ t 0 "alpha" 2.0; t 1 "beta" 3.0 ]
      ~edges:[ { App.src = 0; dst = 1; kbytes = 4.0 } ]
      ()
  in
  let platform =
    Platform.make ~name:"p"
      ~processor:(Resource.processor "cpu")
      ~rc:(Resource.reconfigurable ~n_clb:100 ~reconfig_ms_per_clb:0.01 "rc")
      ~bus:Platform.default_bus ()
  in
  Searchgraph.single_processor_spec ~app ~platform
    ~binding:(fun v -> if v = 1 then Searchgraph.Hw 0 else Searchgraph.Sw)
    ~impl_choice:(fun _ -> 0)
    ~sw_order:[ 0 ] ~contexts:[ [ 1 ] ]

let test_render_feasible () =
  match Gantt.render (spec ()) with
  | None -> Alcotest.fail "feasible spec"
  | Some text ->
    Alcotest.(check bool) "mentions makespan" true
      (String.length text > 0
       && String.sub text 0 8 = "makespan");
    Alcotest.(check bool) "has processor lane" true
      (String.index_opt text 'P' <> None);
    (* Context lane with a reconfiguration block. *)
    Alcotest.(check bool) "has cfg block" true (String.contains text '#')

let test_lane_summary () =
  match Gantt.lane_summary (spec ()) with
  | None -> Alcotest.fail "feasible spec"
  | Some text ->
    let contains needle =
      let n = String.length needle and h = String.length text in
      let rec scan i = i + n <= h && (String.sub text i n = needle || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool) "alpha listed" true (contains "alpha");
    Alcotest.(check bool) "beta listed" true (contains "beta");
    Alcotest.(check bool) "cfg listed" true (contains "cfg");
    Alcotest.(check bool) "Proc lane" true (contains "Proc:");
    Alcotest.(check bool) "Ctx lane" true (contains "Ctx1:")

let test_infeasible_is_none () =
  let s = spec () in
  let bad = { s with Searchgraph.sw_order = [ 0 ];
                     binding = (fun v -> if v = 0 then Searchgraph.Hw 0 else Searchgraph.Sw);
                     contexts = [ [ 0 ] ] } in
  (* Binding says 0 is hardware but sw_order also lists it: the spec is
     inconsistent and produces a cyclic/meaningless graph only if edges
     conflict; build a genuinely cyclic one instead. *)
  ignore bad;
  let t id name sw_time = Task.make ~id ~name ~functionality:"F" ~sw_time
      ~impls:[ impl 20 0.5 ] in
  let app =
    App.make ~name:"g2"
      ~tasks:[ t 0 "a" 1.0; t 1 "b" 1.0 ]
      ~edges:[ { App.src = 0; dst = 1; kbytes = 0.0 } ]
      ()
  in
  let cyclic =
    Searchgraph.single_processor_spec ~app ~platform:s.Searchgraph.platform
      ~binding:(fun _ -> Searchgraph.Sw)
      ~impl_choice:(fun _ -> 0)
      ~sw_order:[ 1; 0 ] ~contexts:[]
  in
  Alcotest.(check bool) "render none" true (Gantt.render cyclic = None);
  Alcotest.(check bool) "summary none" true (Gantt.lane_summary cyclic = None)

let suite =
  [
    Alcotest.test_case "render feasible" `Quick test_render_feasible;
    Alcotest.test_case "lane summary" `Quick test_lane_summary;
    Alcotest.test_case "infeasible is none" `Quick test_infeasible_is_none;
  ]
