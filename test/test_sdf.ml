open Repro_taskgraph

let actor ?(impls = [ { Task.clbs = 10; hw_time = 0.5 } ]) name =
  { Sdf.name; functionality = "F"; sw_time = 1.0; impls }

let channel ?(initial = 0) src dst produce consume =
  {
    Sdf.src;
    dst;
    produce;
    consume;
    initial_tokens = initial;
    kbytes_per_token = 1.0;
  }

let test_repetition_vector_chain () =
  (* a --(1:2)--> b --(1:2)--> c : q = [4; 2; 1] *)
  let sdf =
    Sdf.make ~name:"chain"
      ~actors:[ actor "a"; actor "b"; actor "c" ]
      ~channels:[ channel 0 1 1 2; channel 1 2 1 2 ]
  in
  match Sdf.repetition_vector sdf with
  | Some q -> Alcotest.(check (array int)) "vector" [| 4; 2; 1 |] q
  | None -> Alcotest.fail "consistent graph"

let test_repetition_vector_homogeneous () =
  let sdf =
    Sdf.make ~name:"homog"
      ~actors:[ actor "a"; actor "b" ]
      ~channels:[ channel 0 1 3 3 ]
  in
  match Sdf.repetition_vector sdf with
  | Some q -> Alcotest.(check (array int)) "minimal" [| 1; 1 |] q
  | None -> Alcotest.fail "consistent graph"

let test_repetition_vector_disconnected () =
  let sdf =
    Sdf.make ~name:"disc" ~actors:[ actor "a"; actor "b" ] ~channels:[]
  in
  match Sdf.repetition_vector sdf with
  | Some q -> Alcotest.(check (array int)) "each once" [| 1; 1 |] q
  | None -> Alcotest.fail "consistent graph"

let test_inconsistent () =
  (* a->b at 1:1 but also a->b at 2:1 cannot balance. *)
  let sdf =
    Sdf.make ~name:"bad"
      ~actors:[ actor "a"; actor "b" ]
      ~channels:[ channel 0 1 1 1; channel 0 1 2 1 ]
  in
  Alcotest.(check bool) "inconsistent" true (Sdf.repetition_vector sdf = None);
  match Sdf.expand sdf with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expansion must fail"

let test_expand_chain () =
  let sdf =
    Sdf.make ~name:"chain"
      ~actors:[ actor "a"; actor "b"; actor "c" ]
      ~channels:[ channel 0 1 1 2; channel 1 2 1 2 ]
  in
  match Sdf.expand ~deadline:5.0 sdf with
  | Error msg -> Alcotest.fail msg
  | Ok app ->
    Alcotest.(check int) "4+2+1 firings" 7 (App.size app);
    Alcotest.(check bool) "validates" true (App.validate app = Ok ());
    Alcotest.(check bool) "deadline carried" true
      (app.App.deadline = Some 5.0);
    (* b#0 consumes the tokens of a#0 and a#1: edges a0->b0, a1->b0. *)
    let g = app.App.graph in
    Alcotest.(check (list int)) "b0 preds" [ 0; 1 ]
      (List.sort compare (Graph.preds g 4))

let test_expand_initial_tokens () =
  (* With 2 initial tokens, b#0 fires without waiting for a. *)
  let sdf =
    Sdf.make ~name:"delayed"
      ~actors:[ actor "a"; actor "b" ]
      ~channels:[ channel ~initial:2 0 1 1 2 ]
  in
  match Sdf.expand sdf with
  | Error msg -> Alcotest.fail msg
  | Ok app ->
    let g = app.App.graph in
    (* q = [2;1]; b is task 2; with 2 initial tokens it has no preds. *)
    Alcotest.(check int) "firings" 3 (App.size app);
    Alcotest.(check (list int)) "b0 independent" [] (Graph.preds g 2)

let test_expand_iterations () =
  let sdf =
    Sdf.make ~name:"chain"
      ~actors:[ actor "a"; actor "b" ]
      ~channels:[ channel 0 1 1 2 ]
  in
  (* q = [2;1]; three iterations give 6 + 3 = 9 firings. *)
  match Sdf.expand ~iterations:3 sdf with
  | Error msg -> Alcotest.fail msg
  | Ok app ->
    Alcotest.(check int) "firings scaled" 9 (App.size app);
    Alcotest.(check bool) "validates" true (App.validate app = Ok ());
    (* b#2 (task index 6+2=8) consumes tokens 5 and 6, produced by
       firings a#4 and a#5 (tasks 4 and 5). *)
    Alcotest.(check (list int)) "third-iteration deps" [ 4; 5 ]
      (List.sort compare (Graph.preds app.App.graph 8));
  match Sdf.expand ~iterations:0 sdf with
  | exception Invalid_argument _ -> ()
  | Ok _ | Error _ -> Alcotest.fail "iterations 0 must be rejected"

let test_firing_names () =
  let a = actor "fft" in
  Alcotest.(check string) "name" "fft#3" (Sdf.firing_task_name a 3)

let test_make_validation () =
  Alcotest.check_raises "bad rate" (Invalid_argument "Sdf.make: non-positive rate")
    (fun () ->
      ignore
        (Sdf.make ~name:"bad"
           ~actors:[ actor "a"; actor "b" ]
           ~channels:[ channel 0 1 0 1 ]));
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Sdf.make: channel endpoint out of range") (fun () ->
      ignore (Sdf.make ~name:"bad" ~actors:[ actor "a" ]
                ~channels:[ channel 0 3 1 1 ]))

let test_quickstart_example () =
  (* The example from examples/sdf_pipeline.ml: q = [4;2;2;1]. *)
  let actors = [ actor "source"; actor "filter"; actor "decimate"; actor "sink" ] in
  let sdf =
    Sdf.make ~name:"downsampler" ~actors
      ~channels:[ channel 0 1 1 2; channel 1 2 1 1; channel 2 3 1 2 ]
  in
  match Sdf.repetition_vector sdf with
  | Some q -> Alcotest.(check (array int)) "vector" [| 4; 2; 2; 1 |] q
  | None -> Alcotest.fail "consistent"

let suite =
  [
    Alcotest.test_case "repetition vector chain" `Quick
      test_repetition_vector_chain;
    Alcotest.test_case "repetition vector homogeneous" `Quick
      test_repetition_vector_homogeneous;
    Alcotest.test_case "repetition vector disconnected" `Quick
      test_repetition_vector_disconnected;
    Alcotest.test_case "inconsistent graph" `Quick test_inconsistent;
    Alcotest.test_case "expand chain" `Quick test_expand_chain;
    Alcotest.test_case "expand with initial tokens" `Quick
      test_expand_initial_tokens;
    Alcotest.test_case "expand iterations" `Quick test_expand_iterations;
    Alcotest.test_case "firing names" `Quick test_firing_names;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "quickstart example" `Quick test_quickstart_example;
  ]
