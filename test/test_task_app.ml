open Repro_taskgraph

let impl clbs hw_time = { Task.clbs; hw_time }

let simple_task ?(impls = [ impl 10 0.5 ]) id =
  Task.make ~id ~name:(Printf.sprintf "t%d" id) ~functionality:"F"
    ~sw_time:1.0 ~impls

let test_task_validation () =
  Alcotest.check_raises "negative id" (Invalid_argument "Task.make: negative id")
    (fun () -> ignore (simple_task (-1)));
  Alcotest.check_raises "no impls"
    (Invalid_argument "Task.make: no hardware implementation") (fun () ->
      ignore (simple_task ~impls:[] 0));
  Alcotest.check_raises "bad sw time" (Invalid_argument "Task.make: sw_time <= 0")
    (fun () ->
      ignore
        (Task.make ~id:0 ~name:"x" ~functionality:"F" ~sw_time:0.0
           ~impls:[ impl 10 0.5 ]))

let test_impl_sorted () =
  let t =
    Task.make ~id:0 ~name:"x" ~functionality:"F" ~sw_time:4.0
      ~impls:[ impl 40 0.5; impl 10 2.0; impl 20 1.0 ]
  in
  Alcotest.(check int) "count" 3 (Task.impl_count t);
  Alcotest.(check int) "smallest first" 10 (Task.impl t 0).Task.clbs;
  Alcotest.(check int) "largest last" 40 (Task.impl t 2).Task.clbs;
  Alcotest.(check int) "smallest_impl" 10 (Task.smallest_impl t).Task.clbs;
  Alcotest.(check (float 1e-9)) "fastest_impl" 0.5
    (Task.fastest_impl t).Task.hw_time;
  Alcotest.(check (float 1e-9)) "best speedup" 8.0 (Task.best_speedup t)

let test_pareto () =
  let dominated = [ impl 10 1.0; impl 20 1.0; impl 30 0.5 ] in
  Alcotest.(check bool) "detects dominated" false (Task.is_pareto dominated);
  let front = Task.pareto_filter dominated in
  Alcotest.(check int) "front size" 2 (List.length front);
  Alcotest.(check bool) "front is pareto" true (Task.is_pareto front);
  let already = [ impl 10 2.0; impl 20 1.0 ] in
  Alcotest.(check bool) "keeps pareto set" true
    (Task.pareto_filter already = already)

let edge src dst kbytes = { App.src; dst; kbytes }

let small_app () =
  App.make ~name:"test" ~deadline:10.0
    ~tasks:[ simple_task 0; simple_task 1; simple_task 2 ]
    ~edges:[ edge 0 1 5.0; edge 1 2 5.0 ]
    ()

let test_app_construction () =
  let app = small_app () in
  Alcotest.(check int) "size" 3 (App.size app);
  Alcotest.(check (float 1e-9)) "edge data" 5.0 (App.kbytes app 0 1);
  Alcotest.(check (float 1e-9)) "missing edge" 0.0 (App.kbytes app 0 2);
  Alcotest.(check int) "edges listed" 2 (List.length (App.edges app));
  Alcotest.(check bool) "validates" true (App.validate app = Ok ())

let test_app_rejects_cycle () =
  Alcotest.check_raises "cycle"
    (Invalid_argument "App.make: precedence graph has a cycle") (fun () ->
      ignore
        (App.make ~name:"bad"
           ~tasks:[ simple_task 0; simple_task 1 ]
           ~edges:[ edge 0 1 1.0; edge 1 0 1.0 ]
           ()))

let test_app_rejects_bad_ids () =
  Alcotest.check_raises "id mismatch"
    (Invalid_argument "App.make: task at position 0 has id 5") (fun () ->
      ignore (App.make ~name:"bad" ~tasks:[ simple_task 5 ] ~edges:[] ()))

let test_app_rejects_duplicate_edge () =
  Alcotest.check_raises "duplicate" (Invalid_argument "App.make: duplicate edge")
    (fun () ->
      ignore
        (App.make ~name:"bad"
           ~tasks:[ simple_task 0; simple_task 1 ]
           ~edges:[ edge 0 1 1.0; edge 0 1 2.0 ]
           ()))

let test_app_rejects_bad_deadline () =
  Alcotest.check_raises "deadline"
    (Invalid_argument "App.make: non-positive deadline") (fun () ->
      ignore (App.make ~name:"bad" ~deadline:0.0 ~tasks:[ simple_task 0 ]
                ~edges:[] ()))

let test_metrics () =
  let app = small_app () in
  Alcotest.(check (float 1e-9)) "total sw" 3.0 (App.total_sw_time app);
  Alcotest.(check (float 1e-9)) "sw critical path (chain)" 3.0
    (App.sw_critical_path app);
  Alcotest.(check (float 1e-9)) "hw critical path" 1.5 (App.hw_critical_path app);
  Alcotest.(check (float 1e-9)) "parallelism of chain" 1.0 (App.parallelism app)

let test_parallel_metrics () =
  (* Two independent tasks: parallelism 2. *)
  let app =
    App.make ~name:"par" ~tasks:[ simple_task 0; simple_task 1 ] ~edges:[] ()
  in
  Alcotest.(check (float 1e-9)) "critical path" 1.0 (App.sw_critical_path app);
  Alcotest.(check (float 1e-9)) "parallelism" 2.0 (App.parallelism app)

let test_topological_order () =
  let app = small_app () in
  Alcotest.(check (array int)) "chain order" [| 0; 1; 2 |]
    (App.topological_order app)

let suite =
  [
    Alcotest.test_case "task validation" `Quick test_task_validation;
    Alcotest.test_case "impl sorting/access" `Quick test_impl_sorted;
    Alcotest.test_case "pareto" `Quick test_pareto;
    Alcotest.test_case "app construction" `Quick test_app_construction;
    Alcotest.test_case "app rejects cycle" `Quick test_app_rejects_cycle;
    Alcotest.test_case "app rejects bad ids" `Quick test_app_rejects_bad_ids;
    Alcotest.test_case "app rejects duplicate edges" `Quick
      test_app_rejects_duplicate_edge;
    Alcotest.test_case "app rejects bad deadline" `Quick
      test_app_rejects_bad_deadline;
    Alcotest.test_case "app metrics" `Quick test_metrics;
    Alcotest.test_case "parallel metrics" `Quick test_parallel_metrics;
    Alcotest.test_case "topological order" `Quick test_topological_order;
  ]
