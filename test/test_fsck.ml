(* The robustness layer: priority bands with aging promotion, the
   cross-host observation ledger, the fleet breaker signal, the
   detect-and-rollback commit window, and the fsck spool auditor. *)

module Atomic_io = Repro_util.Atomic_io
module Checkpoint = Repro_util.Checkpoint
module Clock = Repro_util.Clock
module Json = Repro_util.Json_lite
module Campaign = Repro_serve.Campaign
module Fsck = Repro_serve.Fsck
module Lease = Repro_serve.Lease
module Spool = Repro_serve.Spool

let with_spool f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-fsck-%d-%06x" (Unix.getpid ())
         (Random.bits () land 0xffffff))
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () -> f (Spool.create root))

let write path text = Atomic_io.write_string path text

(* A fabricated peer lease: reclaim and the breaker only ever read the
   file, so a hand-written one stands in for a remote daemon. *)
let write_lease spool ~id ~host ?(seq = 0) ~ttl ~updated ?(extra = []) () =
  write
    (Filename.concat spool.Spool.daemons_dir (id ^ ".json"))
    (Json.obj
       ([
          ("id", Json.Str id);
          ("host", Json.Str host);
          ("pid", Json.num_int 4242);
          ("seq", Json.num_int seq);
          ("ttl", Json.Num ttl);
          ("updated", Json.Num updated);
        ]
       @ extra)
    ^ "\n")

(* ---- priority bands ----------------------------------------------- *)

let test_band_claim_order () =
  with_spool @@ fun spool ->
  Spool.enqueue spool ~priority:2 ~name:"a.json" ~text:"{}";
  Spool.enqueue spool ~name:"b.json" ~text:"{}";
  Spool.enqueue spool ~priority:1 ~name:"c.json" ~text:"{}";
  Spool.enqueue spool ~name:"d.json" ~text:"{}";
  Alcotest.(check (list int)) "bands present" [ 0; 1; 2 ] (Spool.bands spool);
  Alcotest.(check (list string)) "claim order: band then name"
    [ "b.json"; "d.json"; "c.json"; "a.json" ]
    (Spool.pending spool);
  Alcotest.(check (list (pair int string))) "banded listing"
    [ (0, "b.json"); (0, "d.json"); (1, "c.json"); (2, "a.json") ]
    (Spool.pending_banded spool);
  Alcotest.(check (list (pair int int))) "per-band depths"
    [ (0, 2); (1, 1); (2, 1) ]
    (Spool.queue_depths spool);
  Alcotest.(check (option int)) "find_queued low band" (Some 2)
    (Spool.find_queued spool "a.json");
  Alcotest.(check (option int)) "find_queued band 0" (Some 0)
    (Spool.find_queued spool "b.json");
  Alcotest.(check (option int)) "find_queued absent" None
    (Spool.find_queued spool "zz.json");
  (* claim finds a name whatever band holds it. *)
  Alcotest.(check bool) "claim reaches band 1" true
    (Spool.claim spool "c.json");
  Alcotest.(check (option int)) "claimed job left its band" None
    (Spool.find_queued spool "c.json");
  Alcotest.(check (list string)) "claimed into work/" [ "c.json" ]
    (Spool.in_work spool);
  match Spool.enqueue spool ~priority:(-1) ~name:"n.json" ~text:"{}" with
  | () -> Alcotest.fail "negative priority accepted"
  | exception Invalid_argument _ -> ()

let test_unclaim_restores_band () =
  with_spool @@ fun spool ->
  let lease =
    Lease.acquire ~id:"band-d" ~dir:spool.Spool.daemons_dir ~ttl:60.0 ()
  in
  Spool.enqueue spool ~priority:2 ~name:"x.json" ~text:"{}";
  Alcotest.(check bool) "claimed" true (Spool.claim ~owner:lease spool "x.json");
  (match Spool.read_claim_stamp spool "x.json" with
   | Error msg -> Alcotest.fail msg
   | Ok stamp ->
     Alcotest.(check (option int)) "stamp records the band" (Some 2)
       (Json.int_field stamp "band"));
  Spool.unclaim spool "x.json";
  Alcotest.(check (option int)) "unclaim returns to the recorded band"
    (Some 2)
    (Spool.find_queued spool "x.json");
  Alcotest.(check (list string)) "work/ empty" [] (Spool.in_work spool)

let test_promote_aged () =
  with_spool @@ fun spool ->
  let now = Clock.wall () in
  Spool.enqueue spool ~priority:2 ~name:"a.json" ~text:"{}";
  Spool.enqueue spool ~priority:1 ~name:"b.json" ~text:"{}";
  Alcotest.(check (list string)) "young jobs stay put" []
    (Spool.promote_aged ~now ~after:3600.0 spool);
  (* Aged past the threshold: each job climbs exactly one band. *)
  Alcotest.(check (list string)) "aged jobs climb one band"
    [ "b.json"; "a.json" ]
    (Spool.promote_aged ~now:(now +. 7200.0) ~after:3600.0 spool);
  Alcotest.(check (option int)) "band 2 reached band 1" (Some 1)
    (Spool.find_queued spool "a.json");
  Alcotest.(check (option int)) "band 1 reached band 0" (Some 0)
    (Spool.find_queued spool "b.json");
  (* The rename reset the age clock: an immediate pass moves nothing. *)
  Alcotest.(check (list string)) "promotion resets the age clock" []
    (Spool.promote_aged ~now:(Clock.wall ()) ~after:3600.0 spool);
  (* A same-name copy in the destination band blocks promotion — fsck
     reports the duplicate; promotion must not clobber either copy. *)
  Spool.enqueue spool ~priority:1 ~name:"b.json" ~text:"{\"other\": 1}";
  let promoted = Spool.promote_aged ~now:(now +. 7200.0) ~after:3600.0 spool in
  Alcotest.(check bool) "occupied destination blocks promotion" false
    (List.mem "b.json" promoted);
  Alcotest.(check bool) "blocked copy stays in its band" true
    (Sys.file_exists (Filename.concat (Spool.band_dir spool 1) "b.json"));
  match Spool.promote_aged ~now ~after:0.0 spool with
  | _ -> Alcotest.fail "non-positive after accepted"
  | exception Invalid_argument _ -> ()

(* ---- cross-host observation ledger -------------------------------- *)

let peer ?(id = "peer") ?(ttl = 1.0) ~seq ~updated () =
  {
    Lease.id;
    host = "elsewhere";
    pid = 1;
    seq;
    ttl;
    updated;
    released = false;
    fields = [];
  }

let test_ledger_stall_detection () =
  let ledger = Lease.Ledger.create () in
  Alcotest.(check bool) "never-observed peer is not stalled" false
    (Lease.Ledger.stalled ledger ~now:100.0 (peer ~seq:5 ~updated:100.0 ()));
  Lease.Ledger.observe ledger ~now:100.0 (peer ~seq:5 ~updated:100.0 ());
  Alcotest.(check (option (pair int (float 1e-9)))) "observation recorded"
    (Some (5, 100.0))
    (Lease.Ledger.observed ledger "peer");
  Alcotest.(check bool) "within the window: not stalled" false
    (Lease.Ledger.stalled ledger ~now:100.5 (peer ~seq:5 ~updated:100.5 ()));
  Alcotest.(check bool) "seq stagnant a full ttl: stalled" true
    (Lease.Ledger.stalled ledger ~now:101.0 (peer ~seq:5 ~updated:101.0 ()));
  (* Any seq change proves a write and resets the window. *)
  Lease.Ledger.observe ledger ~now:101.0 (peer ~seq:6 ~updated:101.0 ());
  Alcotest.(check bool) "advanced seq resets the stall clock" false
    (Lease.Ledger.stalled ledger ~now:101.5 (peer ~seq:6 ~updated:101.5 ()))

let test_alive_observed_defeats_clock_skew () =
  (* The peer stamps itself far into the future: [alive] trusts the
     stamp and says live forever; the ledger judges in observer time
     and declares it dead one ttl after its seq stops moving. *)
  let skewed now = peer ~seq:3 ~updated:(now +. 1.0e6) () in
  Alcotest.(check bool) "plain alive is fooled by the skewed stamp" true
    (Lease.alive ~now:200.0 (skewed 200.0));
  let ledger = Lease.Ledger.create () in
  Alcotest.(check bool) "first observation: conservatively live" true
    (Lease.alive_observed ~ledger ~now:200.0 (skewed 200.0));
  Alcotest.(check bool) "still inside the window" true
    (Lease.alive_observed ~ledger ~now:200.9 (skewed 200.9));
  Alcotest.(check bool) "stagnant seq past one ttl: dead" false
    (Lease.alive_observed ~ledger ~now:201.1 (skewed 201.1))

let test_reclaim_with_ledger_heals_skewed_claim () =
  with_spool @@ fun spool ->
  let now = Clock.wall () in
  (* A remote daemon with a future-skewed clock claimed a job, then
     died.  Its pid is unreachable and its lease looks eternally
     fresh: without the ledger the claim is stuck forever. *)
  write_lease spool ~id:"skew-remote" ~host:"chaos-remote" ~seq:3 ~ttl:0.5
    ~updated:(now +. 1.0e6) ();
  write (Spool.work_path spool "skew.json") "{}";
  write
    (Spool.claim_stamp_path spool "skew.json")
    (Json.obj
       [
         ("owner", Json.Str "skew-remote");
         ("seq", Json.num_int 3);
         ("claimed_at", Json.Num now);
         ("band", Json.num_int 1);
       ]
    ^ "\n");
  Alcotest.(check (list string)) "ledger-less reclaim trusts the skewed stamp"
    []
    (Spool.reclaim ~self:"me" ~now:(now +. 100.0) ~grace:0.5 spool);
  let ledger = Lease.Ledger.create () in
  Alcotest.(check (list string)) "first observed pass waits out the window" []
    (Spool.reclaim ~self:"me" ~ledger ~now ~grace:0.5 spool);
  Alcotest.(check (list string)) "stagnant seq past one ttl: re-queued"
    [ "skew.json" ]
    (Spool.reclaim ~self:"me" ~ledger ~now:(now +. 0.6) ~grace:0.5 spool);
  Alcotest.(check (option int)) "re-queued into its recorded band" (Some 1)
    (Spool.find_queued spool "skew.json");
  Alcotest.(check (list string)) "work/ clean" [] (Spool.in_work spool)

(* ---- fleet breaker signal ----------------------------------------- *)

let test_fleet_breaker_open () =
  with_spool @@ fun spool ->
  let now = Clock.wall () in
  Alcotest.(check bool) "empty fleet is healthy" false
    (Spool.fleet_breaker_open ~now spool);
  write_lease spool ~id:"open-d" ~host:"elsewhere" ~ttl:60.0 ~updated:now
    ~extra:[ ("breaker", Json.Str "open") ]
    ();
  Alcotest.(check bool) "every live daemon degraded: open" true
    (Spool.fleet_breaker_open ~now spool);
  write_lease spool ~id:"ok-d" ~host:"elsewhere" ~ttl:60.0 ~updated:now ();
  Alcotest.(check bool) "one healthy daemon clears the signal" false
    (Spool.fleet_breaker_open ~now spool);
  (* The healthy daemon's lease expires: only the degraded one is
     live again. *)
  write_lease spool ~id:"ok-d" ~host:"elsewhere" ~ttl:0.01
    ~updated:(now -. 10.0) ();
  Alcotest.(check bool) "dead leases do not vote" true
    (Spool.fleet_breaker_open ~now spool);
  write_lease spool ~id:"open-d" ~host:"elsewhere" ~ttl:0.01
    ~updated:(now -. 10.0)
    ~extra:[ ("breaker", Json.Str "open") ]
    ();
  Alcotest.(check bool) "a fleet of dead daemons is just empty" false
    (Spool.fleet_breaker_open ~now spool)

(* ---- the commit window: detect-and-rollback ----------------------- *)

let test_finish_fenced_late () =
  with_spool @@ fun spool ->
  let dir = spool.Spool.daemons_dir in
  let a = Lease.acquire ~id:"fl-a" ~dir ~ttl:60.0 () in
  let b = Lease.acquire ~id:"fl-b" ~dir ~ttl:60.0 () in
  Spool.enqueue spool ~name:"job.json" ~text:"{}";
  Alcotest.(check bool) "A claims" true (Spool.claim ~owner:a spool "job.json");
  let claim_seq = Lease.seq a in
  write (Spool.checkpoint_path spool "job.json") "scratch";
  (* The irreducible race, forced deterministically: the claim changes
     hands INSIDE A's commit window — after A's atomic result write,
     before its post-write fence re-check. *)
  let commit =
    Spool.finish_fenced spool "job.json" ~owner:a ~claim_seq
      ~result_json:"{\"status\": \"complete\"}"
      ~after_write:(fun () ->
        Spool.unclaim spool "job.json";
        Alcotest.(check bool) "B re-claims inside the window" true
          (Spool.claim ~owner:b spool "job.json"))
  in
  Alcotest.(check string) "detected as a late fence" "fenced-late"
    (Spool.commit_name commit);
  Alcotest.(check bool) "not committed" false (Spool.committed commit);
  (* The result stands (byte-identical to what B will produce), but no
     claim-side file was touched: B finishes undisturbed. *)
  Alcotest.(check bool) "result filed" true
    (Spool.result_ok spool "job.json");
  Alcotest.(check (list string)) "B's claim intact" [ "job.json" ]
    (Spool.in_work spool);
  (match Spool.read_claim_stamp spool "job.json" with
   | Error msg -> Alcotest.fail msg
   | Ok stamp ->
     Alcotest.(check (option string)) "stamp still names B" (Some "fl-b")
       (Json.str_field stamp "owner"));
  Alcotest.(check bool) "checkpoint kept for B" true
    (Sys.file_exists (Spool.checkpoint_path spool "job.json"));
  (* B's own commit goes through cleanly. *)
  Alcotest.(check string) "B commits" "committed"
    (Spool.commit_name
       (Spool.finish_fenced spool "job.json" ~owner:b
          ~claim_seq:(Lease.seq b)
          ~result_json:"{\"status\": \"complete\"}"));
  Alcotest.(check (list string)) "work/ clean after B" [] (Spool.in_work spool)

(* The opposite in-window race: no hand-over — a peer's reclaim saw
   the just-filed result and ran the finished-claim cleanup inside the
   commit window.  The stamp is gone (not replaced), and that is still
   a commit, never a lost fence. *)
let test_finish_fenced_peer_cleanup_commits () =
  with_spool @@ fun spool ->
  let dir = spool.Spool.daemons_dir in
  let a = Lease.acquire ~id:"pc-a" ~dir ~ttl:60.0 () in
  Spool.enqueue spool ~name:"job.json" ~text:"{}";
  Alcotest.(check bool) "A claims" true (Spool.claim ~owner:a spool "job.json");
  let claim_seq = Lease.seq a in
  let commit =
    Spool.finish_fenced spool "job.json" ~owner:a ~claim_seq
      ~result_json:"{\"status\": \"complete\"}"
      ~after_write:(fun () ->
        (* The peer's cleanup: result exists, so reclaim removes the
           claim-side files. *)
        ignore
          (Spool.reclaim ~now:(Clock.wall ()) ~grace:60.0 spool
            : string list))
  in
  Alcotest.(check string) "peer cleanup inside the window is a commit"
    "committed"
    (Spool.commit_name commit);
  Alcotest.(check bool) "result filed" true (Spool.result_ok spool "job.json");
  Alcotest.(check (list string)) "work/ clean" [] (Spool.in_work spool)

(* ---- fsck --------------------------------------------------------- *)

let find_invariant audit invariant =
  List.filter (fun f -> f.Fsck.invariant = invariant) audit.Fsck.findings

let check_counts what audit expected =
  Alcotest.(check (list (pair string int))) what expected (Fsck.counts audit)

(* One spool wearing every repairable kind of damage at once. *)
let break_spool spool =
  let daemons = spool.Spool.daemons_dir in
  (* orphan-stamp: a claim stamp whose job file is gone. *)
  write (Spool.claim_stamp_path spool "ghost.json") "{}";
  (* damaged-stamp: a stamp that does not parse. *)
  write (Spool.work_path spool "ds.json") "{}";
  write (Spool.claim_stamp_path spool "ds.json") "not json";
  (* seq-regression: a stamp ahead of its owner's lease seq. *)
  write (Spool.work_path spool "seqr.json") "{}";
  write
    (Spool.claim_stamp_path spool "seqr.json")
    (Json.obj
       [
         ("owner", Json.Str "seq-d");
         ("seq", Json.num_int 9);
         ("claimed_at", Json.Num 0.0);
       ]
    ^ "\n");
  write_lease spool ~id:"seq-d" ~host:"elsewhere" ~seq:2 ~ttl:60.0
    ~updated:(Clock.wall ()) ();
  (* damaged-job: a queued spec no rerun could ever load, plus the
     zero-byte shape a torn producer write leaves. *)
  Spool.enqueue spool ~name:"bad.json" ~text:"not json";
  Spool.enqueue spool ~priority:1 ~name:"zero.json" ~text:"";
  (* damaged-checkpoint beside a live claim. *)
  write (Spool.work_path spool "run.json") "{}";
  write (Spool.checkpoint_path spool "run.json") "garbage";
  (* torn-result shadowing a queued copy. *)
  Spool.enqueue spool ~name:"torn.json" ~text:"{}";
  write (Spool.result_path spool "torn.json") "{\"torn\": ";
  (* duplicate-outcome: filed in results/ and failed/ both. *)
  write (Spool.result_path spool "dup.json") "{\"status\": \"complete\"}\n";
  write (Spool.failed_path spool "dup.json") "{}";
  write (Spool.failed_path spool "dup.reason.json") "{}";
  (* finished-claim: result filed, only the cleanup was lost. *)
  write (Spool.work_path spool "done.json") "{}";
  Checkpoint.save (Spool.checkpoint_path spool "done.json") ~kind:"test" "p";
  write (Spool.result_path spool "done.json") "{\"status\": \"complete\"}\n";
  (* orphan-checkpoint / orphan-reason: sidecars with no job left. *)
  write (Filename.concat spool.Spool.work_dir "gone.ckpt") "x";
  write (Spool.failed_path spool "lonely.reason.json") "{}";
  (* duplicate-band and duplicate-queue, identical copies. *)
  Spool.enqueue spool ~name:"same.json" ~text:"{\"a\": 1}";
  Spool.enqueue spool ~priority:1 ~name:"same.json" ~text:"{\"a\": 1}";
  write (Spool.work_path spool "cq.json") "{}";
  Spool.enqueue spool ~name:"cq.json" ~text:"{}";
  (* damaged-lease and a stale atomic-write temp. *)
  write (Filename.concat daemons "broken.json") "not json";
  write (Filename.concat spool.Spool.work_dir "w.tmp.42") "partial"

let expected_counts =
  [
    ("damaged-checkpoint", 1);
    ("damaged-job", 2);
    ("damaged-lease", 1);
    ("damaged-stamp", 1);
    ("duplicate-band", 1);
    ("duplicate-outcome", 1);
    ("duplicate-queue", 1);
    ("finished-claim", 1);
    ("orphan-checkpoint", 1);
    ("orphan-reason", 1);
    ("orphan-stamp", 1);
    ("seq-regression", 1);
    ("stale-temp", 1);
    ("torn-result", 1);
  ]

let test_fsck_clean_spool () =
  with_spool @@ fun spool ->
  let audit = Fsck.run spool in
  Alcotest.(check bool) "fresh spool is clean" true (Fsck.clean audit);
  Alcotest.(check string) "clean summary"
    "fsck: clean (0 file(s) scanned)" (Fsck.summary audit)

(* A producer-built spool is just jobs/ — quarantine must create
   failed/ itself rather than crash, and a dry run must not. *)
let test_fsck_repair_bare_producer_spool () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-fsck-bare-%d-%06x" (Unix.getpid ())
         (Random.bits () land 0xffffff))
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () ->
      let spool = Spool.layout root in
      Unix.mkdir root 0o755;
      Unix.mkdir spool.Spool.jobs_dir 0o755;
      write (Filename.concat spool.Spool.jobs_dir "bad.json") "not json";
      let dry = Fsck.run spool in
      Alcotest.(check bool) "dry run finds the damaged job" false
        (Fsck.clean dry);
      Alcotest.(check bool) "dry run creates no failed/" false
        (Sys.file_exists spool.Spool.failed_dir);
      let audit = Fsck.run ~repair:true spool in
      Alcotest.(check bool) "repair applied" true
        (List.for_all
           (fun (f : Fsck.finding) -> f.applied)
           audit.Fsck.findings);
      Alcotest.(check bool) "job quarantined into a fresh failed/" true
        (Sys.file_exists (Spool.failed_path spool "bad.json"));
      Alcotest.(check bool) "re-audit clean" true
        (Fsck.clean (Fsck.run spool)))

let test_fsck_dry_run_touches_nothing () =
  with_spool @@ fun spool ->
  break_spool spool;
  let now = Clock.wall () +. 3600.0 in
  let audit = Fsck.run ~now spool in
  check_counts "every invariant found" audit expected_counts;
  List.iter
    (fun (f : Fsck.finding) ->
      Alcotest.(check bool) (f.Fsck.path ^ " not applied") false f.Fsck.applied)
    audit.Fsck.findings;
  (* Spot-check the filesystem is untouched. *)
  Alcotest.(check bool) "damaged job still queued" true
    (Spool.find_queued spool "bad.json" = Some 0);
  Alcotest.(check bool) "torn result still on disk" true
    (Sys.file_exists (Spool.result_path spool "torn.json"));
  Alcotest.(check bool) "orphan stamp still on disk" true
    (Sys.file_exists (Spool.claim_stamp_path spool "ghost.json"));
  (* The machine-readable audit carries the same verdict. *)
  match Fsck.to_json audit with
  | Json.Obj fields ->
    Alcotest.(check (option bool)) "audit json not clean" (Some false)
      (Json.bool_field fields "clean");
    Alcotest.(check (option bool)) "audit json dry run" (Some false)
      (Json.bool_field fields "repair")
  | _ -> Alcotest.fail "audit json is not an object"

let test_fsck_repair_converges_in_one_pass () =
  with_spool @@ fun spool ->
  break_spool spool;
  let now = Clock.wall () +. 3600.0 in
  let audit = Fsck.run ~repair:true ~now spool in
  check_counts "repair pass finds the same set" audit expected_counts;
  List.iter
    (fun (f : Fsck.finding) ->
      Alcotest.(check bool) (f.Fsck.path ^ " applied") true f.Fsck.applied)
    audit.Fsck.findings;
  (* Post-conditions of the individual repairs. *)
  Alcotest.(check bool) "damaged queued job quarantined" true
    (Sys.file_exists (Spool.failed_path spool "bad.json"));
  Alcotest.(check bool) "quarantine reason recorded" true
    (Sys.file_exists (Spool.failed_path spool "bad.reason.json"));
  Alcotest.(check (option int)) "damaged job left the queue" None
    (Spool.find_queued spool "bad.json");
  Alcotest.(check bool) "torn result removed" false
    (Sys.file_exists (Spool.result_path spool "torn.json"));
  Alcotest.(check (option int)) "its queued copy survives" (Some 0)
    (Spool.find_queued spool "torn.json");
  Alcotest.(check bool) "parsed result wins the duplicate outcome" true
    (Spool.result_ok spool "dup.json");
  Alcotest.(check bool) "quarantined duplicate removed" false
    (Sys.file_exists (Spool.failed_path spool "dup.json"));
  Alcotest.(check bool) "finished claim cleaned up" false
    (Sys.file_exists (Spool.work_path spool "done.json"));
  Alcotest.(check bool) "its result kept" true
    (Spool.result_ok spool "done.json");
  Alcotest.(check bool) "damaged checkpoint removed" false
    (Sys.file_exists (Spool.checkpoint_path spool "run.json"));
  Alcotest.(check bool) "its claim survives as stamp-less" true
    (Sys.file_exists (Spool.work_path spool "run.json"));
  Alcotest.(check (option int)) "identical band duplicate collapsed" (Some 0)
    (Spool.find_queued spool "same.json");
  Alcotest.(check (option int)) "queued copy of a claim removed" None
    (Spool.find_queued spool "cq.json");
  Alcotest.(check bool) "claimed copy survives" true
    (Sys.file_exists (Spool.work_path spool "cq.json"));
  (* Idempotence: the repaired spool audits clean. *)
  let again = Fsck.run ~now spool in
  Alcotest.(check (list (pair string int))) "second pass finds nothing" []
    (Fsck.counts again);
  Alcotest.(check bool) "second pass clean" true (Fsck.clean again)

let test_fsck_reports_unrepairable_result () =
  with_spool @@ fun spool ->
  (* A damaged result whose job spec is gone: nothing safe to repair —
     report-only, and it persists across repair passes so every audit
     keeps naming it until a human resolves it. *)
  write (Spool.result_path spool "lost.json") "not json";
  let audit = Fsck.run ~repair:true spool in
  (match find_invariant audit "damaged-result" with
   | [ f ] ->
     Alcotest.(check string) "report remedy" "report"
       (Fsck.remedy_name f.Fsck.remedy);
     Alcotest.(check bool) "never applied" false f.Fsck.applied
   | fs -> Alcotest.failf "want one damaged-result, got %d" (List.length fs));
  Alcotest.(check bool) "file left in place" true
    (Sys.file_exists (Spool.result_path spool "lost.json"));
  let again = Fsck.run ~repair:true spool in
  Alcotest.(check int) "still reported on the next pass" 1
    (List.length (find_invariant again "damaged-result"))

(* ---- campaign: damaged results and priority bands ----------------- *)

let parsed text =
  match Campaign.of_json text with
  | Ok t -> t
  | Error msg -> Alcotest.fail msg

let test_campaign_damaged_results () =
  with_spool @@ fun spool ->
  let t =
    parsed
      "{\"campaign\": \"dmg\", \"jobs\": [\n\
      \  {\"name\": \"d1\", \"app\": \"sobel\"},\n\
      \  {\"name\": \"d2\", \"app\": \"sobel\"},\n\
      \  {\"name\": \"d3\", \"app\": \"sobel\"}\n\
       ]}"
  in
  (* Zero-byte and truncated result files — what a hard kill mid-write
     leaves when the write was not atomic (or the disk filled). *)
  write (Spool.result_path spool "d1.json") "";
  write (Spool.result_path spool "d2.json") "{\"status\": \"comp";
  write (Spool.result_path spool "d3.json") "{\"status\": \"complete\"}\n";
  let report =
    match Campaign.report spool t with
    | Json.Obj fields -> fields
    | _ -> Alcotest.fail "report is not an object"
  in
  Alcotest.(check (option int)) "damaged counted" (Some 2)
    (Json.int_field report "damaged");
  Alcotest.(check (option int)) "parsed result still completes" (Some 1)
    (Json.int_field report "completed");
  Alcotest.(check (option bool)) "damaged results are never done"
    (Some false)
    (Json.bool_field report "done");
  match Json.find report "jobs" with
  | Some (Json.Arr jobs) ->
    let state name =
      List.find_map
        (function
          | Json.Obj f when Json.str_field f "job" = Some name ->
            Some (Json.str_field f "state", Json.str_field f "error")
          | _ -> None)
        jobs
    in
    (match state "d1" with
     | Some (Some "damaged", Some err) ->
       Alcotest.(check bool) "error is one line" false
         (String.contains err '\n')
     | _ -> Alcotest.fail "zero-byte result not reported damaged");
    (match state "d2" with
     | Some (Some "damaged", Some _) -> ()
     | _ -> Alcotest.fail "truncated result not reported damaged")
  | _ -> Alcotest.fail "report lost the jobs array"

let test_campaign_priority_bands () =
  with_spool @@ fun spool ->
  let t =
    parsed
      "{\"campaign\": \"banded\", \"jobs\": [\n\
      \  {\"name\": \"urgent\", \"app\": \"sobel\"},\n\
      \  {\"name\": \"bulk\", \"app\": \"sobel\", \"priority\": 2}\n\
       ]}"
  in
  (match t.Campaign.entries with
   | [ e1; e2 ] ->
     Alcotest.(check int) "default band" 0 e1.Campaign.priority;
     Alcotest.(check int) "explicit band" 2 e2.Campaign.priority;
     Alcotest.(check bool) "priority stripped from the written spec" true
       (match Json.parse_obj e2.Campaign.text with
        | Ok fields -> Json.find fields "priority" = None
        | Error _ -> false)
   | _ -> Alcotest.fail "entry count");
  let s = Campaign.submit t spool in
  Alcotest.(check (list string)) "both enqueued" [ "urgent"; "bulk" ]
    s.Campaign.enqueued;
  Alcotest.(check (option int)) "urgent in band 0" (Some 0)
    (Spool.find_queued spool "urgent.json");
  Alcotest.(check (option int)) "bulk in band 2" (Some 2)
    (Spool.find_queued spool "bulk.json");
  (* Re-submit sees the banded copy: idempotence crosses bands. *)
  let again = Campaign.submit t spool in
  Alcotest.(check (list string)) "re-submit skips both" [ "urgent"; "bulk" ]
    again.Campaign.skipped;
  match
    Campaign.of_json
      "{\"campaign\": \"c\", \"jobs\": [{\"name\": \"x\", \"app\": \
       \"sobel\", \"priority\": 12}]}"
  with
  | Ok _ -> Alcotest.fail "out-of-range priority accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the range" true
      (let needle = "0..9" in
     let nh = String.length msg and nn = String.length needle in
     let rec scan i = i + nn <= nh && (String.sub msg i nn = needle || scan (i + 1)) in
     scan 0)

let suite =
  [
    Alcotest.test_case "claim order: band then name" `Quick
      test_band_claim_order;
    Alcotest.test_case "unclaim returns to the recorded band" `Quick
      test_unclaim_restores_band;
    Alcotest.test_case "aging promotion climbs one band and resets" `Quick
      test_promote_aged;
    Alcotest.test_case "ledger detects a stagnant peer seq" `Quick
      test_ledger_stall_detection;
    Alcotest.test_case "observed liveness defeats clock skew" `Quick
      test_alive_observed_defeats_clock_skew;
    Alcotest.test_case "reclaim with ledger heals a skewed remote claim"
      `Quick test_reclaim_with_ledger_heals_skewed_claim;
    Alcotest.test_case "fleet breaker: all live daemons must agree" `Quick
      test_fleet_breaker_open;
    Alcotest.test_case "late fence detected inside the commit window" `Quick
      test_finish_fenced_late;
    Alcotest.test_case "peer cleanup inside the commit window commits" `Quick
      test_finish_fenced_peer_cleanup_commits;
    Alcotest.test_case "fsck: fresh spool audits clean" `Quick
      test_fsck_clean_spool;
    Alcotest.test_case "fsck: repair works on a bare producer spool" `Quick
      test_fsck_repair_bare_producer_spool;
    Alcotest.test_case "fsck: dry run reports and touches nothing" `Quick
      test_fsck_dry_run_touches_nothing;
    Alcotest.test_case "fsck: repair converges in one pass" `Quick
      test_fsck_repair_converges_in_one_pass;
    Alcotest.test_case "fsck: unrepairable damage stays reported" `Quick
      test_fsck_reports_unrepairable_result;
    Alcotest.test_case "campaign counts damaged results, never done" `Quick
      test_campaign_damaged_results;
    Alcotest.test_case "campaign submits into priority bands" `Quick
      test_campaign_priority_bands;
  ]
