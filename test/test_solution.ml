open Repro_taskgraph
open Repro_arch
module Solution = Repro_dse.Solution
module Searchgraph = Repro_sched.Searchgraph
module Rng = Repro_util.Rng

let impl clbs hw_time = { Task.clbs; hw_time }

let app () =
  let t id sw_time impls =
    Task.make ~id ~name:(Printf.sprintf "t%d" id) ~functionality:"F" ~sw_time
      ~impls
  in
  App.make ~name:"pipe" ~deadline:50.0
    ~tasks:
      [
        t 0 2.0 [ impl 30 0.8 ];
        t 1 4.0 [ impl 40 1.0; impl 80 0.6 ];
        t 2 3.0 [ impl 40 0.9 ];
        t 3 5.0 [ impl 60 1.2; impl 90 0.8 ];
        t 4 1.0 [ impl 20 0.5 ];
      ]
    ~edges:
      [
        { App.src = 0; dst = 1; kbytes = 5.0 };
        { App.src = 0; dst = 2; kbytes = 5.0 };
        { App.src = 1; dst = 3; kbytes = 5.0 };
        { App.src = 2; dst = 3; kbytes = 5.0 };
        { App.src = 3; dst = 4; kbytes = 5.0 };
      ]
    ()

let platform ?(n_clb = 100) () =
  Platform.make ~name:"p"
    ~processor:(Resource.processor "cpu")
    ~rc:(Resource.reconfigurable ~n_clb ~reconfig_ms_per_clb:0.01 "rc")
    ~bus:Platform.default_bus ()

let ok = function
  | Ok () -> true
  | Error msg -> Alcotest.failf "invariant violation: %s" msg

let test_all_software () =
  let s = Solution.all_software (app ()) (platform ()) in
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check int) "no contexts" 0 (Solution.n_contexts s);
  Alcotest.(check (list int)) "no hw" [] (Solution.hw_tasks s);
  Alcotest.(check (float 1e-9)) "makespan = total sw" 15.0 (Solution.makespan s)

let test_random_valid () =
  for seed = 1 to 30 do
    let rng = Rng.create seed in
    let s = Solution.random rng (app ()) (platform ()) in
    Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
    Alcotest.(check bool) "feasible" true (Solution.evaluate s <> None)
  done

let test_random_respects_capacity () =
  (* A 35-CLB device can only host task 0 (30) and task 4 (20),
     one per context. *)
  for seed = 1 to 20 do
    let rng = Rng.create seed in
    let s = Solution.random rng (app ()) (platform ~n_clb:35 ()) in
    Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
    List.iter
      (fun members ->
        Alcotest.(check bool) "context fits" true
          (List.length members = 1
           && List.for_all (fun v -> v = 0 || v = 4) members))
      (Solution.contexts s)
  done

let test_move_to_context_and_back () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check (list int)) "hw tasks" [ 1 ] (Solution.hw_tasks s);
  Alcotest.(check bool) "binding is hw" true
    (Solution.binding s 1 = Searchgraph.Hw 0);
  Alcotest.(check int) "context area" 40 (Solution.context_clbs s 0);
  Solution.move_to_sw s ~task:1 ~before:(Some 3);
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check int) "context dropped" 0 (Solution.n_contexts s);
  Alcotest.(check bool) "back to software" true
    (Solution.binding s 1 = Searchgraph.Sw)

let test_capacity_spawns_context () =
  let s = Solution.all_software (app ()) (platform ~n_clb:100 ()) in
  Solution.append_context s ~task:1 (* 40 CLBs *);
  Solution.move_to_context s ~task:2 ~dest:1 (* +40 fits *);
  Alcotest.(check int) "one context" 1 (Solution.n_contexts s);
  Solution.move_to_context s ~task:3 ~dest:1 (* +60 overflows: spawn *);
  Alcotest.(check int) "spawned" 2 (Solution.n_contexts s);
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  (* Task 3 sits alone in the new context, after the destination. *)
  Alcotest.(check (list (list int))) "membership" [ [ 2; 1 ]; [ 3 ] ]
    (Solution.contexts s)

let test_insert_context_positions () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  Solution.insert_context s ~task:0 ~at:0;
  Alcotest.(check (list (list int))) "0 inserted first" [ [ 0 ]; [ 1 ] ]
    (Solution.contexts s);
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check bool) "feasible order" true (Solution.evaluate s <> None)

let test_swap_contexts () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:0;
  Solution.append_context s ~task:1;
  Solution.swap_contexts s ~at:0;
  Alcotest.(check (list (list int))) "swapped" [ [ 1 ]; [ 0 ] ]
    (Solution.contexts s);
  Alcotest.(check bool) "invariants hold" true (ok (Solution.check_invariants s));
  (* 0 precedes 1, so context(1) before context(0) is infeasible. *)
  Alcotest.(check bool) "infeasible order detected" true
    (Solution.evaluate s = None)

let test_set_impl () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  Solution.set_impl s 1 1;
  Alcotest.(check int) "impl selected" 1 (Solution.impl_index s 1);
  Alcotest.(check int) "area follows impl" 80 (Solution.context_clbs s 0);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Solution.set_impl: implementation index out of range")
    (fun () -> Solution.set_impl s 1 7)

let test_capacity_violation_infeasible () =
  let s = Solution.all_software (app ()) (platform ~n_clb:100 ()) in
  Solution.append_context s ~task:1;
  Solution.move_to_context s ~task:2 ~dest:1;
  (* 40 + 40 fits; upgrading task 1 to 80 CLBs overflows. *)
  Solution.set_impl s 1 1;
  Alcotest.(check bool) "evaluate reports infeasible" true
    (Solution.evaluate s = None);
  Alcotest.(check bool) "makespan infinite" true
    (Solution.makespan s = infinity)

let test_save_restore () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  Solution.set_impl s 1 1;
  let before_makespan = Solution.makespan s in
  let restore = Solution.save s in
  Solution.move_to_context s ~task:3 ~dest:1;
  Solution.move_to_sw s ~task:1 ~before:None;
  Solution.set_impl s 0 0;
  restore ();
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check (list (list int))) "contexts restored" [ [ 1 ] ]
    (Solution.contexts s);
  Alcotest.(check int) "impl restored" 1 (Solution.impl_index s 1);
  Alcotest.(check (float 1e-9)) "makespan restored" before_makespan
    (Solution.makespan s)

let test_copy_independent () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  let snap = Solution.snapshot s in
  Solution.move_to_sw s ~task:1 ~before:None;
  Alcotest.(check (list int)) "snapshot keeps hw" [ 1 ] (Solution.hw_tasks snap);
  Alcotest.(check (list int)) "original changed" [] (Solution.hw_tasks s)

let test_evaluation_caching () =
  let s = Solution.all_software (app ()) (platform ()) in
  let e1 = Solution.evaluate s in
  let e2 = Solution.evaluate s in
  Alcotest.(check bool) "same cached value" true (e1 == e2);
  Solution.append_context s ~task:1;
  let e3 = Solution.evaluate s in
  Alcotest.(check bool) "invalidated on mutation" true (not (e2 == e3))

(* A 16-task chain whose sink has two implementations: a weight-only
   move at the sink has a two-node cone (config node + sink) while a
   full rebuild evaluates all 17 search-graph nodes. *)
let chain_app () =
  let t id sw_time impls =
    Task.make ~id ~name:(Printf.sprintf "c%d" id) ~functionality:"F" ~sw_time
      ~impls
  in
  let n = 16 in
  let tasks =
    List.init n (fun id ->
        if id = n - 1 then t id 3.0 [ impl 40 1.0; impl 80 0.5 ]
        else t id 1.0 [ impl 20 0.4 ])
  in
  let edges =
    List.init (n - 1) (fun i -> { App.src = i; dst = i + 1; kbytes = 2.0 })
  in
  App.make ~name:"chain16" ~tasks ~edges ()

let test_incremental_locality () =
  let s = Solution.all_software (chain_app ()) (platform ~n_clb:200 ()) in
  Solution.append_context s ~task:15;
  Alcotest.(check bool) "feasible" true (Solution.evaluate s <> None);
  let stats = Solution.eval_stats s in
  Alcotest.(check bool) "first evaluation is full" true
    (stats.Solution.full_evals > 0 && stats.Solution.incr_evals = 0);
  let full_nodes_per_eval =
    stats.Solution.full_nodes / stats.Solution.full_evals
  in
  (* Toggle the sink's implementation: structure preserved. *)
  Solution.set_impl s 15 1;
  let incremental = Solution.evaluate s in
  Alcotest.(check int) "served incrementally" 1 stats.Solution.incr_evals;
  Alcotest.(check bool) "counts nodes" true (stats.Solution.incr_nodes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "at least 5x fewer nodes (%d vs %d per eval)"
       stats.Solution.incr_nodes full_nodes_per_eval)
    true
    (stats.Solution.incr_nodes * 5 <= full_nodes_per_eval);
  (* The fast path must agree with a from-scratch evaluation. *)
  match (incremental, Searchgraph.evaluate (Solution.spec s)) with
  | Some got, Some want ->
    Alcotest.(check (float 1e-9)) "makespan matches reference"
      want.Searchgraph.makespan got.Searchgraph.makespan;
    Alcotest.(check (float 1e-9)) "initial reconfig matches"
      want.Searchgraph.initial_reconfig got.Searchgraph.initial_reconfig;
    Alcotest.(check (float 1e-9)) "comm matches" want.Searchgraph.comm
      got.Searchgraph.comm
  | _ -> Alcotest.fail "feasibility mismatch between fast path and reference"

let test_incremental_undo () =
  let s = Solution.all_software (app ()) (platform ~n_clb:200 ()) in
  (* Task 3's implementations trade 0.4 ms of run time for 0.3 ms of
     reconfiguration, so toggling them really moves the makespan. *)
  Solution.append_context s ~task:3;
  let original = Solution.makespan s in
  let restore = Solution.save s in
  Solution.set_impl s 3 1;
  let changed = Solution.makespan s in
  Alcotest.(check bool) "impl move changes the makespan" true
    (changed <> original);
  restore ();
  Alcotest.(check (float 1e-9)) "undo restores the makespan through the \
                                 incremental path"
    original (Solution.makespan s);
  (* A structural mutation after incremental activity is served by the
     dynamic-edge refresh and stays correct (insert before task 4 to
     keep the software order precedence-consistent). *)
  Solution.move_to_sw s ~task:3 ~before:(Some 4);
  match (Solution.evaluate s, Searchgraph.evaluate (Solution.spec s)) with
  | Some got, Some want ->
    Alcotest.(check (float 1e-9)) "structural fallback matches reference"
      want.Searchgraph.makespan got.Searchgraph.makespan
  | None, None -> Alcotest.fail "structural move should stay feasible"
  | _ -> Alcotest.fail "feasibility mismatch after structural move"

let test_incremental_matches_reference_random () =
  (* Oracle test over random accepted/undone move sequences: the cached
     (possibly incremental) evaluation must always equal a fresh
     Searchgraph.evaluate of the current spec. *)
  let rng = Rng.create 77 in
  let s =
    Solution.random rng
      (Repro_workloads.Motion_detection.app ())
      (Repro_workloads.Motion_detection.platform ~n_clb:800 ())
  in
  for _ = 1 to 400 do
    (match Repro_dse.Moves.propose rng Repro_dse.Moves.fixed_architecture s with
     | Some undo -> if Repro_util.Rng.bernoulli rng 0.3 then undo ()
     | None -> ());
    match (Solution.evaluate s, Searchgraph.evaluate (Solution.spec s)) with
    | None, None -> ()
    | Some got, Some want ->
      if abs_float (got.Searchgraph.makespan -. want.Searchgraph.makespan)
         >= 1e-9
      then
        Alcotest.failf "makespan diverged: %.12f vs %.12f"
          got.Searchgraph.makespan want.Searchgraph.makespan
    | _ -> Alcotest.fail "feasibility diverged from reference"
  done;
  let stats = Solution.eval_stats s in
  Alcotest.(check bool) "incremental path exercised" true
    (stats.Solution.incr_evals > 0)

(* Every structural move kind must be served by the dynamic-edge
   refresh — no full rebuild — and each evaluation must equal a
   from-scratch [Searchgraph.evaluate] of the same spec bitwise. *)
let test_structural_moves_incremental () =
  let s = Solution.all_software (app ()) (platform ~n_clb:200 ()) in
  Alcotest.(check bool) "warm" true (Solution.evaluate s <> None);
  let stats = Solution.eval_stats s in
  let full_before = stats.Solution.full_evals in
  let check_move name kind mutate =
    mutate ();
    (match (Solution.evaluate s, Searchgraph.evaluate (Solution.spec s)) with
     | Some got, Some want ->
       Alcotest.(check bool)
         (name ^ ": bit-identical to scratch evaluation")
         true
         (got.Searchgraph.makespan = want.Searchgraph.makespan
          && got.Searchgraph.initial_reconfig = want.Searchgraph.initial_reconfig
          && got.Searchgraph.dynamic_reconfig = want.Searchgraph.dynamic_reconfig
          && got.Searchgraph.comm = want.Searchgraph.comm
          && got.Searchgraph.finish = want.Searchgraph.finish)
     | _ -> Alcotest.failf "%s: expected a feasible evaluation" name);
    Alcotest.(check int) (name ^ ": no rebuild") full_before
      stats.Solution.full_evals;
    Alcotest.(check bool) (name ^ ": incremental eval recorded") true
      ((Solution.kind_stats stats kind).Solution.k_incr_evals > 0)
  in
  check_move "sw_reorder" Solution.Sw_reorder (fun () ->
      Solution.reorder_sw s ~task:2 ~before:1);
  check_move "ctx_create" Solution.Ctx_create (fun () ->
      Solution.insert_context s ~task:1 ~at:0);
  check_move "ctx_create2" Solution.Ctx_create (fun () ->
      Solution.insert_context s ~task:2 ~at:1);
  check_move "ctx_swap" Solution.Ctx_swap (fun () ->
      Solution.swap_contexts s ~at:0);
  check_move "ctx_migrate" Solution.Ctx_migrate (fun () ->
      Solution.move_to_context s ~task:2 ~dest:1);
  check_move "sw_migrate" Solution.Sw_migrate (fun () ->
      Solution.move_to_sw s ~task:1 ~before:(Some 3));
  check_move "impl" Solution.Impl (fun () -> Solution.set_impl s 1 1);
  (* Undo of a structural move replays the delta log — still no
     rebuild, still the exact pre-move value. *)
  let before = Solution.makespan s in
  let restore = Solution.save s in
  Solution.append_context s ~task:3;
  ignore (Solution.makespan s);
  restore ();
  Alcotest.(check bool) "undo restores exactly" true
    (Solution.makespan s = before);
  Alcotest.(check int) "undo avoided rebuilds" full_before
    stats.Solution.full_evals

let qcheck_incremental_exact =
  (* Random move sequences with interleaved undo: the incrementally
     maintained evaluation must stay bitwise equal to a from-scratch
     evaluation, and an encode/decode round trip mid-sequence must
     replay bit-identically. *)
  QCheck.Test.make ~name:"incremental evaluation bit-identical to scratch"
    ~count:60
    QCheck.(pair small_int (int_range 10 60))
    (fun (seed, steps) ->
      let application = app () in
      let plat = platform ~n_clb:200 () in
      let rng = Rng.create (seed + 3) in
      let s = Solution.random rng application plat in
      let ok = ref true in
      for _ = 1 to steps do
        (match
           Repro_dse.Moves.propose rng Repro_dse.Moves.fixed_architecture s
         with
        | Some undo -> if Rng.bernoulli rng 0.4 then undo ()
        | None -> ());
        (match (Solution.evaluate s, Searchgraph.evaluate (Solution.spec s)) with
        | None, None -> ()
        | Some got, Some want ->
          if
            not
              (got.Searchgraph.makespan = want.Searchgraph.makespan
               && got.Searchgraph.initial_reconfig
                  = want.Searchgraph.initial_reconfig
               && got.Searchgraph.dynamic_reconfig
                  = want.Searchgraph.dynamic_reconfig
               && got.Searchgraph.comm = want.Searchgraph.comm)
          then ok := false
        | _ -> ok := false);
        if Rng.bernoulli rng 0.2 then begin
          match Solution.decode application plat (Solution.encode s) with
          | Error _ -> ok := false
          | Ok d ->
            if Solution.encode d <> Solution.encode s then ok := false;
            if Solution.makespan d <> Solution.makespan s then ok := false
        end
      done;
      !ok)

(* Native deltas must serve every structural kind without a global
   pair regeneration, while emitting region pairs and patching the
   boundary terms of binding-flipping moves. *)
let test_native_delta_counters () =
  (* Pin the default mode: under REPRO_CHECK_DELTAS the paranoid
     verification itself regenerates the global list, which is exactly
     what the counters are here to prove the mutators never need. *)
  let was = Solution.check_deltas_enabled () in
  Solution.set_check_deltas false;
  Fun.protect ~finally:(fun () -> Solution.set_check_deltas was) @@ fun () ->
  let s = Solution.all_software (app ()) (platform ~n_clb:200 ()) in
  Alcotest.(check bool) "warm" true (Solution.evaluate s <> None);
  Solution.insert_context s ~task:1 ~at:0;
  ignore (Solution.makespan s);
  Solution.reorder_sw s ~task:2 ~before:0;
  ignore (Solution.makespan s);
  Solution.move_to_context s ~task:2 ~dest:1;
  ignore (Solution.makespan s);
  Solution.move_to_sw s ~task:1 ~before:(Some 3);
  ignore (Solution.makespan s);
  let stats = Solution.eval_stats s in
  Alcotest.(check int) "no global pair regeneration" 0
    stats.Solution.pair_regens;
  Alcotest.(check bool) "mutators emitted region pairs" true
    (stats.Solution.pairs_emitted > 0);
  (* ctx_create rebinds task 1 across the Sw/Hw boundary: both of its
     application edges change their crossing status. *)
  let created = Solution.kind_stats stats Solution.Ctx_create in
  Alcotest.(check int) "ctx_create patched both incident terms" 2
    created.Solution.k_comm_patched;
  Alcotest.(check int) "ctx_create regenerated nothing" 0
    created.Solution.k_pair_regens;
  List.iter
    (fun kind ->
      Alcotest.(check int) "per-kind regens stay zero" 0
        (Solution.kind_stats stats kind).Solution.k_pair_regens)
    [ Solution.Sw_reorder; Solution.Sw_migrate; Solution.Ctx_migrate;
      Solution.Ctx_create ]

let qcheck_paranoid_deltas =
  (* The paranoid mode re-derives every move's pair delta from a global
     regenerate-and-diff and faults on any mismatch, so simply driving
     random sequences (with undo and mid-sequence codec round trips)
     under the flag is the property. *)
  QCheck.Test.make ~name:"paranoid delta check over random move sequences"
    ~count:40
    QCheck.(pair small_int (int_range 20 80))
    (fun (seed, steps) ->
      let was = Solution.check_deltas_enabled () in
      Solution.set_check_deltas true;
      Fun.protect ~finally:(fun () -> Solution.set_check_deltas was)
        (fun () ->
          let application = app () in
          let plat = platform ~n_clb:200 () in
          let rng = Rng.create (seed + 11) in
          let s = Solution.random rng application plat in
          let ok = ref true in
          for _ = 1 to steps do
            (match
               Repro_dse.Moves.propose rng Repro_dse.Moves.fixed_architecture s
             with
            | Some undo -> if Rng.bernoulli rng 0.35 then undo ()
            | None -> ());
            (match
               (Solution.evaluate s, Searchgraph.evaluate (Solution.spec s))
             with
            | None, None -> ()
            | Some got, Some want ->
              if got.Searchgraph.makespan <> want.Searchgraph.makespan then
                ok := false
            | _ -> ok := false);
            if Rng.bernoulli rng 0.15 then begin
              match Solution.decode application plat (Solution.encode s) with
              | Error _ -> ok := false
              | Ok d -> if Solution.encode d <> Solution.encode s then ok := false
            end
          done;
          !ok))

let test_replace_platform () =
  let s = Solution.all_software (app ()) (platform ~n_clb:100 ()) in
  Solution.append_context s ~task:3;
  Solution.set_impl s 3 1 (* 90 CLBs *);
  Alcotest.(check bool) "fits 100" true (Solution.evaluate s <> None);
  Solution.replace_platform s (platform ~n_clb:50 ());
  Alcotest.(check bool) "overflows 50" true (Solution.evaluate s = None);
  Solution.replace_platform s (platform ~n_clb:200 ());
  Alcotest.(check bool) "fits 200" true (Solution.evaluate s <> None)

let suite =
  [
    Alcotest.test_case "all software" `Quick test_all_software;
    Alcotest.test_case "random valid" `Quick test_random_valid;
    Alcotest.test_case "random respects capacity" `Quick
      test_random_respects_capacity;
    Alcotest.test_case "move to context and back" `Quick
      test_move_to_context_and_back;
    Alcotest.test_case "capacity spawns context" `Quick
      test_capacity_spawns_context;
    Alcotest.test_case "insert context positions" `Quick
      test_insert_context_positions;
    Alcotest.test_case "swap contexts" `Quick test_swap_contexts;
    Alcotest.test_case "set impl" `Quick test_set_impl;
    Alcotest.test_case "capacity violation infeasible" `Quick
      test_capacity_violation_infeasible;
    Alcotest.test_case "save/restore" `Quick test_save_restore;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "evaluation caching" `Quick test_evaluation_caching;
    Alcotest.test_case "incremental locality" `Quick test_incremental_locality;
    Alcotest.test_case "incremental undo" `Quick test_incremental_undo;
    Alcotest.test_case "incremental matches reference (random moves)" `Quick
      test_incremental_matches_reference_random;
    Alcotest.test_case "structural moves served incrementally" `Quick
      test_structural_moves_incremental;
    QCheck_alcotest.to_alcotest qcheck_incremental_exact;
    Alcotest.test_case "native delta counters" `Quick
      test_native_delta_counters;
    QCheck_alcotest.to_alcotest qcheck_paranoid_deltas;
    Alcotest.test_case "replace platform" `Quick test_replace_platform;
  ]
