open Repro_taskgraph
open Repro_arch
module Solution = Repro_dse.Solution
module Searchgraph = Repro_sched.Searchgraph
module Rng = Repro_util.Rng

let impl clbs hw_time = { Task.clbs; hw_time }

let app () =
  let t id sw_time impls =
    Task.make ~id ~name:(Printf.sprintf "t%d" id) ~functionality:"F" ~sw_time
      ~impls
  in
  App.make ~name:"pipe" ~deadline:50.0
    ~tasks:
      [
        t 0 2.0 [ impl 30 0.8 ];
        t 1 4.0 [ impl 40 1.0; impl 80 0.6 ];
        t 2 3.0 [ impl 40 0.9 ];
        t 3 5.0 [ impl 60 1.2; impl 90 0.8 ];
        t 4 1.0 [ impl 20 0.5 ];
      ]
    ~edges:
      [
        { App.src = 0; dst = 1; kbytes = 5.0 };
        { App.src = 0; dst = 2; kbytes = 5.0 };
        { App.src = 1; dst = 3; kbytes = 5.0 };
        { App.src = 2; dst = 3; kbytes = 5.0 };
        { App.src = 3; dst = 4; kbytes = 5.0 };
      ]
    ()

let platform ?(n_clb = 100) () =
  Platform.make ~name:"p"
    ~processor:(Resource.processor "cpu")
    ~rc:(Resource.reconfigurable ~n_clb ~reconfig_ms_per_clb:0.01 "rc")
    ~bus:Platform.default_bus ()

let ok = function
  | Ok () -> true
  | Error msg -> Alcotest.failf "invariant violation: %s" msg

let test_all_software () =
  let s = Solution.all_software (app ()) (platform ()) in
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check int) "no contexts" 0 (Solution.n_contexts s);
  Alcotest.(check (list int)) "no hw" [] (Solution.hw_tasks s);
  Alcotest.(check (float 1e-9)) "makespan = total sw" 15.0 (Solution.makespan s)

let test_random_valid () =
  for seed = 1 to 30 do
    let rng = Rng.create seed in
    let s = Solution.random rng (app ()) (platform ()) in
    Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
    Alcotest.(check bool) "feasible" true (Solution.evaluate s <> None)
  done

let test_random_respects_capacity () =
  (* A 35-CLB device can only host task 0 (30) and task 4 (20),
     one per context. *)
  for seed = 1 to 20 do
    let rng = Rng.create seed in
    let s = Solution.random rng (app ()) (platform ~n_clb:35 ()) in
    Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
    List.iter
      (fun members ->
        Alcotest.(check bool) "context fits" true
          (List.length members = 1
           && List.for_all (fun v -> v = 0 || v = 4) members))
      (Solution.contexts s)
  done

let test_move_to_context_and_back () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check (list int)) "hw tasks" [ 1 ] (Solution.hw_tasks s);
  Alcotest.(check bool) "binding is hw" true
    (Solution.binding s 1 = Searchgraph.Hw 0);
  Alcotest.(check int) "context area" 40 (Solution.context_clbs s 0);
  Solution.move_to_sw s ~task:1 ~before:(Some 3);
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check int) "context dropped" 0 (Solution.n_contexts s);
  Alcotest.(check bool) "back to software" true
    (Solution.binding s 1 = Searchgraph.Sw)

let test_capacity_spawns_context () =
  let s = Solution.all_software (app ()) (platform ~n_clb:100 ()) in
  Solution.append_context s ~task:1 (* 40 CLBs *);
  Solution.move_to_context s ~task:2 ~dest:1 (* +40 fits *);
  Alcotest.(check int) "one context" 1 (Solution.n_contexts s);
  Solution.move_to_context s ~task:3 ~dest:1 (* +60 overflows: spawn *);
  Alcotest.(check int) "spawned" 2 (Solution.n_contexts s);
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  (* Task 3 sits alone in the new context, after the destination. *)
  Alcotest.(check (list (list int))) "membership" [ [ 2; 1 ]; [ 3 ] ]
    (Solution.contexts s)

let test_insert_context_positions () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  Solution.insert_context s ~task:0 ~at:0;
  Alcotest.(check (list (list int))) "0 inserted first" [ [ 0 ]; [ 1 ] ]
    (Solution.contexts s);
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check bool) "feasible order" true (Solution.evaluate s <> None)

let test_swap_contexts () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:0;
  Solution.append_context s ~task:1;
  Solution.swap_contexts s ~at:0;
  Alcotest.(check (list (list int))) "swapped" [ [ 1 ]; [ 0 ] ]
    (Solution.contexts s);
  Alcotest.(check bool) "invariants hold" true (ok (Solution.check_invariants s));
  (* 0 precedes 1, so context(1) before context(0) is infeasible. *)
  Alcotest.(check bool) "infeasible order detected" true
    (Solution.evaluate s = None)

let test_set_impl () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  Solution.set_impl s 1 1;
  Alcotest.(check int) "impl selected" 1 (Solution.impl_index s 1);
  Alcotest.(check int) "area follows impl" 80 (Solution.context_clbs s 0);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Solution.set_impl: implementation index out of range")
    (fun () -> Solution.set_impl s 1 7)

let test_capacity_violation_infeasible () =
  let s = Solution.all_software (app ()) (platform ~n_clb:100 ()) in
  Solution.append_context s ~task:1;
  Solution.move_to_context s ~task:2 ~dest:1;
  (* 40 + 40 fits; upgrading task 1 to 80 CLBs overflows. *)
  Solution.set_impl s 1 1;
  Alcotest.(check bool) "evaluate reports infeasible" true
    (Solution.evaluate s = None);
  Alcotest.(check bool) "makespan infinite" true
    (Solution.makespan s = infinity)

let test_save_restore () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  Solution.set_impl s 1 1;
  let before_makespan = Solution.makespan s in
  let restore = Solution.save s in
  Solution.move_to_context s ~task:3 ~dest:1;
  Solution.move_to_sw s ~task:1 ~before:None;
  Solution.set_impl s 0 0;
  restore ();
  Alcotest.(check bool) "invariants" true (ok (Solution.check_invariants s));
  Alcotest.(check (list (list int))) "contexts restored" [ [ 1 ] ]
    (Solution.contexts s);
  Alcotest.(check int) "impl restored" 1 (Solution.impl_index s 1);
  Alcotest.(check (float 1e-9)) "makespan restored" before_makespan
    (Solution.makespan s)

let test_copy_independent () =
  let s = Solution.all_software (app ()) (platform ()) in
  Solution.append_context s ~task:1;
  let snap = Solution.snapshot s in
  Solution.move_to_sw s ~task:1 ~before:None;
  Alcotest.(check (list int)) "snapshot keeps hw" [ 1 ] (Solution.hw_tasks snap);
  Alcotest.(check (list int)) "original changed" [] (Solution.hw_tasks s)

let test_evaluation_caching () =
  let s = Solution.all_software (app ()) (platform ()) in
  let e1 = Solution.evaluate s in
  let e2 = Solution.evaluate s in
  Alcotest.(check bool) "same cached value" true (e1 == e2);
  Solution.append_context s ~task:1;
  let e3 = Solution.evaluate s in
  Alcotest.(check bool) "invalidated on mutation" true (not (e2 == e3))

let test_replace_platform () =
  let s = Solution.all_software (app ()) (platform ~n_clb:100 ()) in
  Solution.append_context s ~task:3;
  Solution.set_impl s 3 1 (* 90 CLBs *);
  Alcotest.(check bool) "fits 100" true (Solution.evaluate s <> None);
  Solution.replace_platform s (platform ~n_clb:50 ());
  Alcotest.(check bool) "overflows 50" true (Solution.evaluate s = None);
  Solution.replace_platform s (platform ~n_clb:200 ());
  Alcotest.(check bool) "fits 200" true (Solution.evaluate s <> None)

let suite =
  [
    Alcotest.test_case "all software" `Quick test_all_software;
    Alcotest.test_case "random valid" `Quick test_random_valid;
    Alcotest.test_case "random respects capacity" `Quick
      test_random_respects_capacity;
    Alcotest.test_case "move to context and back" `Quick
      test_move_to_context_and_back;
    Alcotest.test_case "capacity spawns context" `Quick
      test_capacity_spawns_context;
    Alcotest.test_case "insert context positions" `Quick
      test_insert_context_positions;
    Alcotest.test_case "swap contexts" `Quick test_swap_contexts;
    Alcotest.test_case "set impl" `Quick test_set_impl;
    Alcotest.test_case "capacity violation infeasible" `Quick
      test_capacity_violation_infeasible;
    Alcotest.test_case "save/restore" `Quick test_save_restore;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "evaluation caching" `Quick test_evaluation_caching;
    Alcotest.test_case "replace platform" `Quick test_replace_platform;
  ]
