module Bitset = Repro_util.Bitset
module IntSet = Set.Make (Int)

let check = Alcotest.(check bool)

let test_empty () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "capacity" 100 (Bitset.capacity b);
  Alcotest.(check int) "cardinal" 0 (Bitset.cardinal b);
  for i = 0 to 99 do
    check "not mem" false (Bitset.mem b i)
  done

let test_add_remove () =
  let b = Bitset.create 70 in
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 69;
  check "mem 0" true (Bitset.mem b 0);
  check "mem 63 (word boundary)" true (Bitset.mem b 63);
  check "mem 69" true (Bitset.mem b 69);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Bitset.remove b 63;
  check "removed" false (Bitset.mem b 63);
  Alcotest.(check int) "cardinal after remove" 2 (Bitset.cardinal b);
  Bitset.remove b 63 (* idempotent *);
  Alcotest.(check int) "still 2" 2 (Bitset.cardinal b)

let test_out_of_range () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "mem out of range"
    (Invalid_argument "Bitset: index out of range") (fun () ->
      ignore (Bitset.mem b 10));
  Alcotest.check_raises "negative"
    (Invalid_argument "Bitset: index out of range") (fun () ->
      ignore (Bitset.mem b (-1)))

let test_union () =
  let a = Bitset.of_list 50 [ 1; 2; 3 ] in
  let b = Bitset.of_list 50 [ 3; 4 ] in
  Bitset.union_into a b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list a);
  Alcotest.(check (list int)) "src untouched" [ 3; 4 ] (Bitset.to_list b)

let test_union_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 20 in
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Bitset.union_into: capacity mismatch") (fun () ->
      Bitset.union_into a b)

let test_copy_clear_equal () =
  let a = Bitset.of_list 40 [ 5; 7 ] in
  let b = Bitset.copy a in
  check "copies equal" true (Bitset.equal a b);
  Bitset.add b 9;
  check "copies independent" false (Bitset.equal a b);
  Bitset.clear b;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal b)

let test_iter_fold () =
  let b = Bitset.of_list 100 [ 10; 20; 30 ] in
  let collected = ref [] in
  Bitset.iter (fun i -> collected := i :: !collected) b;
  Alcotest.(check (list int)) "iter ascending" [ 30; 20; 10 ] !collected;
  Alcotest.(check int) "fold sum" 60 (Bitset.fold (fun i acc -> i + acc) b 0)

let qcheck_matches_intset =
  let ops =
    QCheck.(list_of_size Gen.(int_range 0 200) (pair bool (int_range 0 99)))
  in
  QCheck.Test.make ~name:"Bitset behaves like Set.Make(Int)" ~count:300 ops
    (fun operations ->
      let b = Bitset.create 100 in
      let reference = ref IntSet.empty in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add b i;
            reference := IntSet.add i !reference
          end
          else begin
            Bitset.remove b i;
            reference := IntSet.remove i !reference
          end)
        operations;
      Bitset.to_list b = IntSet.elements !reference
      && Bitset.cardinal b = IntSet.cardinal !reference)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "union mismatch" `Quick test_union_mismatch;
    Alcotest.test_case "copy/clear/equal" `Quick test_copy_clear_equal;
    Alcotest.test_case "iter/fold" `Quick test_iter_fold;
    QCheck_alcotest.to_alcotest qcheck_matches_intset;
  ]
