module Pqueue = Repro_util.Pqueue

let test_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "length" 0 (Pqueue.length q);
  Alcotest.(check bool) "pop None" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek None" true (Pqueue.peek q = None)

let test_ordering () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "first") ];
  let drain () =
    let rec loop acc =
      match Pqueue.pop q with
      | None -> List.rev acc
      | Some (_, v) -> loop (v :: acc)
    in
    loop []
  in
  Alcotest.(check (list string)) "ascending priority"
    [ "first"; "a"; "b"; "c" ] (drain ())

let test_fifo_ties () =
  let q = Pqueue.create () in
  List.iteri (fun i v -> ignore i; Pqueue.push q 1.0 v) [ "x"; "y"; "z" ];
  let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ]
    [ first; second; third ]

let test_peek_does_not_pop () =
  let q = Pqueue.create () in
  Pqueue.push q 2.0 "a";
  Alcotest.(check bool) "peek sees a" true (Pqueue.peek q = Some (2.0, "a"));
  Alcotest.(check int) "length unchanged" 1 (Pqueue.length q)

let test_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q 5.0 5;
  Pqueue.push q 1.0 1;
  Alcotest.(check bool) "pop 1" true (Pqueue.pop q = Some (1.0, 1));
  Pqueue.push q 0.5 0;
  Pqueue.push q 9.0 9;
  Alcotest.(check bool) "pop 0" true (Pqueue.pop q = Some (0.5, 0));
  Alcotest.(check bool) "pop 5" true (Pqueue.pop q = Some (5.0, 5));
  Alcotest.(check bool) "pop 9" true (Pqueue.pop q = Some (9.0, 9));
  Alcotest.(check bool) "empty again" true (Pqueue.is_empty q)

let qcheck_heapsort =
  QCheck.Test.make ~name:"Pqueue drains in sorted order" ~count:300
    QCheck.(list (float_range (-1000.) 1000.))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q p i) priorities;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let drained = drain [] in
      drained = List.sort compare priorities)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
    Alcotest.test_case "peek" `Quick test_peek_does_not_pop;
    Alcotest.test_case "interleaved" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest qcheck_heapsort;
  ]
