open Repro_taskgraph
module Dot = Repro_taskgraph.Dot

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let app () =
  let t id name =
    Task.make ~id ~name ~functionality:"F" ~sw_time:1.0
      ~impls:[ { Task.clbs = 10; hw_time = 0.5 } ]
  in
  App.make ~name:"dot"
    ~tasks:[ t 0 "first"; t 1 "second"; t 2 "third" ]
    ~edges:
      [
        { App.src = 0; dst = 1; kbytes = 3.0 };
        { App.src = 1; dst = 2; kbytes = 4.0 };
      ]
    ()

let test_of_app () =
  let dot = Dot.of_app (app ()) in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "node labels" true (contains dot "first");
  Alcotest.(check bool) "edges" true (contains dot "n0 -> n1");
  Alcotest.(check bool) "data amounts" true (contains dot "3.0 kB")

let test_of_app_partitioned () =
  let binding v = if v = 1 then `Hw 0 else `Sw in
  let dot = Dot.of_app_partitioned (app ()) ~binding in
  Alcotest.(check bool) "cluster for the context" true
    (contains dot "subgraph cluster_ctx0");
  Alcotest.(check bool) "software colouring" true (contains dot "lightblue");
  Alcotest.(check bool) "hardware colouring" true (contains dot "lightyellow")

let test_write_file () =
  let path = Filename.temp_file "dot" ".dot" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Dot.write_file path "digraph {}\n";
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check string) "written" "digraph {}" line)

let suite =
  [
    Alcotest.test_case "of_app" `Quick test_of_app;
    Alcotest.test_case "of_app_partitioned" `Quick test_of_app_partitioned;
    Alcotest.test_case "write_file" `Quick test_write_file;
  ]
