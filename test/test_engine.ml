(* Engine-conformance suite: every engine in the registry honours the
   same contract — deterministic per-seed streams, iteration budgets,
   cooperative stop probes, and a returned best that is a private
   snapshot consistent with the reported cost.  The suite is
   parameterized over the registry, so a newly registered engine is
   held to the contract automatically. *)

open Repro_taskgraph
open Repro_arch
module Engine = Repro_dse.Engine
module Registry = Repro_dse.Engine_registry
module Solution = Repro_dse.Solution
module Moves = Repro_dse.Moves
module Rng = Repro_util.Rng

let impl clbs hw_time = { Task.clbs; hw_time }

let app () =
  let t id sw_time clbs =
    Task.make ~id ~name:(Printf.sprintf "t%d" id) ~functionality:"F" ~sw_time
      ~impls:[ impl clbs (sw_time /. 3.0) ]
  in
  App.make ~name:"chain4" ~deadline:20.0
    ~tasks:[ t 0 2.0 40; t 1 3.0 50; t 2 4.0 60; t 3 1.0 30 ]
    ~edges:
      [
        { App.src = 0; dst = 1; kbytes = 2.0 };
        { App.src = 1; dst = 2; kbytes = 2.0 };
        { App.src = 2; dst = 3; kbytes = 2.0 };
      ]
    ()

let platform () =
  Platform.make ~name:"p"
    ~processor:(Resource.processor "cpu")
    ~rc:(Resource.reconfigurable ~n_clb:100 ~reconfig_ms_per_clb:0.005 "rc")
    ~bus:Platform.default_bus ()

(* Small but non-trivial per-engine budget; every engine accepts it
   (sa needs at least 2). *)
let budget = 40

let context ?should_stop ?max_evaluations ~seed ~iterations () =
  Engine.context ?should_stop ?max_evaluations ~app:(app ())
    ~platform:(platform ()) ~seed ~iterations ()

let check_valid what solution =
  match Solution.check_invariants solution with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid best solution: %s" what msg

(* The outcome, flattened to a comparable value; costs go through
   [Int64.bits_of_float] so "bit-identical" means exactly that. *)
let fingerprint (o : Engine.outcome) =
  ( Solution.encode o.Engine.best,
    ( Int64.bits_of_float o.Engine.best_cost,
      Int64.bits_of_float o.Engine.initial_cost ),
    (o.Engine.iterations_run, o.Engine.evaluations, o.Engine.accepted),
    o.Engine.status = Engine.Complete )

let conformance_tests engine =
  let name = Engine.name engine in
  let run ?should_stop ?(seed = 11) ?(iterations = budget) () =
    Engine.run engine (context ?should_stop ~seed ~iterations ())
  in
  [
    Alcotest.test_case (name ^ ": same seed, bit-identical outcome") `Quick
      (fun () ->
        let a = run () and b = run () in
        check_valid name a.Engine.best;
        Alcotest.(check bool) "fingerprints equal" true
          (fingerprint a = fingerprint b));
    Alcotest.test_case (name ^ ": iteration budget never exceeded") `Quick
      (fun () ->
        List.iter
          (fun iterations ->
            let o = run ~iterations () in
            Alcotest.(check bool) "within budget" true
              (o.Engine.iterations_run <= iterations);
            Alcotest.(check bool) "complete" true
              (o.Engine.status = Engine.Complete);
            check_valid name o.Engine.best)
          [ 2; 7; budget ]);
    Alcotest.test_case (name ^ ": immediate stop probe") `Quick (fun () ->
        let o = run ~should_stop:(fun () -> true) () in
        Alcotest.(check bool) "interrupted" true
          (o.Engine.status = Engine.Interrupted);
        Alcotest.(check int) "stopped before the first iteration" 0
          o.Engine.iterations_run;
        check_valid name o.Engine.best);
    Alcotest.test_case (name ^ ": stop honoured within one boundary") `Quick
      (fun () ->
        let polls = ref 0 in
        let stop () =
          incr polls;
          !polls > 3
        in
        let o = run ~should_stop:stop () in
        Alcotest.(check bool) "interrupted" true
          (o.Engine.status = Engine.Interrupted);
        Alcotest.(check bool)
          (Printf.sprintf "ran %d iteration(s), stop allowed 3"
             o.Engine.iterations_run)
          true
          (o.Engine.iterations_run <= 3);
        check_valid name o.Engine.best);
    Alcotest.test_case (name ^ ": evaluation budget honoured") `Quick
      (fun () ->
        let unlimited = run () in
        let m = max 1 (unlimited.Engine.evaluations / 2) in
        if unlimited.Engine.evaluations > m then begin
          let limited () =
            Engine.run engine
              (context ~max_evaluations:m ~seed:11 ~iterations:budget ())
          in
          let a = limited () and b = limited () in
          Alcotest.(check bool) "same budget, bit-identical" true
            (fingerprint a = fingerprint b);
          Alcotest.(check bool) "completes (not interrupted)" true
            (a.Engine.status = Engine.Complete);
          Alcotest.(check bool) "spends no more than the unlimited run" true
            (a.Engine.evaluations <= unlimited.Engine.evaluations);
          Alcotest.(check bool) "stops in fewer iterations" true
            (a.Engine.iterations_run < unlimited.Engine.iterations_run);
          check_valid name a.Engine.best
        end);
    Alcotest.test_case (name ^ ": best is consistent with its cost") `Quick
      (fun () ->
        let o = run () in
        if Float.is_finite o.Engine.best_cost then
          Alcotest.(check bool) "makespan(best) = best_cost" true
            (abs_float (Solution.makespan o.Engine.best -. o.Engine.best_cost)
             < 1e-9));
    Alcotest.test_case (name ^ ": best is a private snapshot") `Quick
      (fun () ->
        let a = run () in
        let before = Solution.encode a.Engine.best in
        (* Scribble over the first outcome's best; a rerun must not see
           it through any shared or cached state. *)
        let rng = Rng.create 99 in
        for _ = 1 to 5 do
          ignore (Moves.propose rng Moves.fixed_architecture a.Engine.best)
        done;
        let b = run () in
        Alcotest.(check string) "rerun unaffected by mutating a prior best"
          before
          (Solution.encode b.Engine.best))
  ]

let suite =
  Repro_baseline.Engines.register_all ();
  Alcotest.test_case "registry: all engines registered by name" `Quick
    (fun () ->
      Alcotest.(check (list string)) "names in presentation order"
        [ "sa"; "greedy"; "random"; "hill"; "tabu"; "ga"; "ga-spatial";
          "portfolio" ]
        (Registry.names ());
      List.iter
        (fun name ->
          match Registry.find name with
          | Ok engine ->
            Alcotest.(check string) "find returns the named engine" name
              (Engine.name engine)
          | Error msg -> Alcotest.fail msg)
        (Registry.names ());
      match Registry.find "annealer" with
      | Ok _ -> Alcotest.fail "unknown name resolved"
      | Error msg ->
        Alcotest.(check bool) "error lists the known names" true
          (String.length msg > 0
           && String.index_opt msg ',' <> None))
  :: List.concat_map conformance_tests (Registry.all ())
