open Repro_taskgraph
open Repro_arch
open Repro_sched
module Solution = Repro_dse.Solution
module Moves = Repro_dse.Moves
module Rng = Repro_util.Rng
module Generators = Repro_taskgraph.Generators

let impl clbs hw_time = { Task.clbs; hw_time }

let app () =
  let t id sw_time = Task.make ~id ~name:(Printf.sprintf "t%d" id)
      ~functionality:"F" ~sw_time ~impls:[ impl 40 (sw_time /. 4.0) ] in
  App.make ~name:"v" ~tasks:[ t 0 2.0; t 1 4.0; t 2 1.0 ]
    ~edges:[ { App.src = 0; dst = 1; kbytes = 8.0 };
             { App.src = 1; dst = 2; kbytes = 8.0 } ]
    ()

let platform () =
  Platform.make ~name:"p"
    ~processor:(Resource.processor "cpu")
    ~rc:(Resource.reconfigurable ~n_clb:100 ~reconfig_ms_per_clb:0.01 "rc")
    ~bus:{ Platform.kb_per_ms = 80.0; latency_ms = 0.05 }
    ()

let spec ~binding ~sw_order ~contexts =
  Searchgraph.single_processor_spec ~app:(app ()) ~platform:(platform ())
    ~binding ~impl_choice:(fun _ -> 0) ~sw_order ~contexts

let test_asap_schedule_validates () =
  let s =
    spec
      ~binding:(fun v -> if v = 1 then Searchgraph.Hw 0 else Searchgraph.Sw)
      ~sw_order:[ 0; 2 ] ~contexts:[ [ 1 ] ]
  in
  match Validate.evaluated s with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "ASAP rejected: %s" (String.concat "; " msgs)

let test_detects_precedence_violation () =
  let s =
    spec ~binding:(fun _ -> Searchgraph.Sw) ~sw_order:[ 0; 1; 2 ] ~contexts:[]
  in
  (* Start task 1 before task 0 finished. *)
  let windows = [| (0.0, 2.0); (1.0, 5.0); (5.0, 6.0) |] in
  match Validate.schedule s windows with
  | Ok () -> Alcotest.fail "must reject"
  | Error msgs ->
    Alcotest.(check bool) "mentions edge" true
      (List.exists (fun m -> String.length m > 4 && String.sub m 0 4 = "edge") msgs)

let test_detects_duration_mismatch () =
  let s =
    spec ~binding:(fun _ -> Searchgraph.Sw) ~sw_order:[ 0; 1; 2 ] ~contexts:[]
  in
  let windows = [| (0.0, 1.0); (2.0, 6.0); (6.0, 7.0) |] in
  match Validate.schedule s windows with
  | Ok () -> Alcotest.fail "must reject wrong duration"
  | Error _ -> ()

let test_detects_sw_overlap () =
  (* Two independent software tasks scheduled concurrently. *)
  let t id = Task.make ~id ~name:(Printf.sprintf "t%d" id) ~functionality:"F"
      ~sw_time:2.0 ~impls:[ impl 10 0.5 ] in
  let independent = App.make ~name:"ind" ~tasks:[ t 0; t 1 ] ~edges:[] () in
  let s =
    Searchgraph.single_processor_spec ~app:independent ~platform:(platform ())
      ~binding:(fun _ -> Searchgraph.Sw)
      ~impl_choice:(fun _ -> 0)
      ~sw_order:[ 0; 1 ] ~contexts:[]
  in
  let windows = [| (0.0, 2.0); (1.0, 3.0) |] in
  match Validate.schedule s windows with
  | Ok () -> Alcotest.fail "must reject overlap"
  | Error msgs ->
    Alcotest.(check bool) "mentions overlap or order" true
      (msgs <> [])

let test_detects_premature_context_start () =
  let s =
    spec
      ~binding:(fun v -> if v = 1 then Searchgraph.Hw 0 else Searchgraph.Sw)
      ~sw_order:[ 0; 2 ] ~contexts:[ [ 1 ] ]
  in
  (* Context 1 holds task 1 (40 CLBs -> 0.4 ms of configuration); a
     start before 0.4 is impossible. *)
  let windows = [| (0.0, 2.0); (0.2, 1.2); (2.35, 3.35) |] in
  match Validate.schedule s windows with
  | Ok () -> Alcotest.fail "must reject premature start"
  | Error msgs ->
    Alcotest.(check bool) "mentions configuration" true
      (List.exists
         (fun m ->
           let has needle =
             let n = String.length needle and h = String.length m in
             let rec scan i =
               i + n <= h && (String.sub m i n = needle || scan (i + 1))
             in
             scan 0
           in
           has "configuration")
         msgs)

let test_detects_capacity_violation () =
  let s =
    spec
      ~binding:(fun v -> if v = 2 then Searchgraph.Sw else Searchgraph.Hw 0)
      ~sw_order:[ 2 ]
      ~contexts:[ [ 0; 1 ] ] (* 80 CLBs on a 100-CLB device: fine *)
  in
  (match Validate.evaluated s with
   | Ok () -> ()
   | Error msgs -> Alcotest.failf "80 CLBs fit: %s" (String.concat ";" msgs));
  let tiny =
    { s with Searchgraph.platform =
        Platform.make ~name:"tiny"
          ~processor:(Resource.processor "cpu")
          ~rc:(Resource.reconfigurable ~n_clb:50 ~reconfig_ms_per_clb:0.01 "rc")
          ~bus:Platform.default_bus () }
  in
  match Validate.evaluated tiny with
  | Ok () -> Alcotest.fail "must reject capacity"
  | Error _ -> ()

(* The central property: the ASAP schedule of ANY feasible solution the
   move engine can produce passes the independent checker. *)
let qcheck_explorer_schedules_validate =
  QCheck.Test.make ~name:"ASAP schedules of random move walks validate"
    ~count:30
    QCheck.(pair small_int (int_range 60 400))
    (fun (seed, n_clb) ->
      let rng = Rng.create (seed + 17) in
      let model = Generators.default_impl_model in
      let application =
        Generators.layered rng model ~layers:4 ~width:3 ~edge_probability:0.5
          ~mean_sw_time:2.0 ~mean_kbytes:8.0
      in
      let platform =
        Platform.make ~name:"q"
          ~processor:(Resource.processor "cpu")
          ~rc:(Resource.reconfigurable ~n_clb ~reconfig_ms_per_clb:0.01 "rc")
          ~bus:Platform.default_bus ()
      in
      let solution = Solution.random (Rng.split rng) application platform in
      let ok = ref true in
      for _ = 1 to 200 do
        ignore (Moves.propose rng Moves.fixed_architecture solution);
        match Validate.evaluated (Solution.spec solution) with
        | Ok () -> ()
        | Error _ -> ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "ASAP schedule validates" `Quick
      test_asap_schedule_validates;
    Alcotest.test_case "detects precedence violation" `Quick
      test_detects_precedence_violation;
    Alcotest.test_case "detects duration mismatch" `Quick
      test_detects_duration_mismatch;
    Alcotest.test_case "detects software overlap" `Quick test_detects_sw_overlap;
    Alcotest.test_case "detects premature context start" `Quick
      test_detects_premature_context_start;
    Alcotest.test_case "detects capacity violation" `Quick
      test_detects_capacity_violation;
    QCheck_alcotest.to_alcotest qcheck_explorer_schedules_validate;
  ]
