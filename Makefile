.PHONY: all build test bench examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

# Paper-scale Fig. 3 protocol (100 runs per device size)
bench-full:
	BENCH_RUNS=100 dune exec bench/main.exe -- fig3

examples:
	dune exec examples/quickstart.exe
	dune exec examples/motion_detection.exe
	dune exec examples/custom_architecture.exe
	dune exec examples/sdf_pipeline.exe
	dune exec examples/heterogeneous_soc.exe
	dune exec examples/video_phone.exe

clean:
	dune clean
