.PHONY: all build test bench bench-smoke bench-full examples doc clean faultcheck chaoscheck

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

# Tiny-budget pass over every experiment: exercises each code path and
# the BENCH_*.json emission in well under a minute.
bench-smoke:
	BENCH_RUNS=1 BENCH_ITERS=300 BENCH_FIG2_ITERS=1500 \
	BENCH_COMPARE_ITERS=2000 BENCH_GA_GENERATIONS=5 BENCH_GA_POPULATION=30 \
	BENCH_RANDOM_SAMPLES=500 BENCH_HILL_MOVES=1000 BENCH_TABU_ITERS=200 \
	BENCH_RESTARTS_ITERS=1500 BENCH_MICRO_MOVES=2000 dune exec bench/main.exe

# Paper-scale Fig. 3 protocol (100 runs per device size)
bench-full:
	BENCH_RUNS=100 dune exec bench/main.exe -- fig3

examples:
	dune exec examples/quickstart.exe
	dune exec examples/motion_detection.exe
	dune exec examples/custom_architecture.exe
	dune exec examples/sdf_pipeline.exe
	dune exec examples/heterogeneous_soc.exe
	dune exec examples/video_phone.exe

# Deterministic fault drills: the in-process fault suite, then — for
# several seeds — crash a checkpointed CLI run at an injected
# evaluation fault and prove the checkpoint resumes to completion,
# and crash the job daemon mid-queue at an injected job fault and
# prove recovery leaves every job in exactly one outcome directory.
faultcheck: build
	dune exec -- test/test_main.exe test fault
	@set -e; for seed in 1 2 3; do \
	  ck=$$(mktemp -u); \
	  echo "faultcheck: seed $$seed (REPRO_FAULTS=eval:2500)"; \
	  if REPRO_FAULTS=eval:2500 dune exec -- bin/dse_run.exe \
	       --seed $$seed --iters 5000 --warmup 200 \
	       --checkpoint $$ck --checkpoint-every 400 >/dev/null 2>&1; then \
	    echo "faultcheck: injected fault did not fire"; exit 1; \
	  fi; \
	  dune exec -- bin/dse_run.exe --seed $$seed --iters 5000 --warmup 200 \
	    --resume $$ck >/dev/null; \
	  rm -f $$ck; \
	done; echo "faultcheck resume drill OK"
	@set -e; for spec in sa:5000:2500 greedy:40:10 random:200:100 \
	    hill:200:100 tabu:20:100 ga:4:700 ga-spatial:4:700; do \
	  engine=$${spec%%:*}; rest=$${spec#*:}; \
	  iters=$${rest%%:*}; fault=$${rest#*:}; \
	  ck=$$(mktemp -u); clean=$$(mktemp); resumed=$$(mktemp); \
	  echo "faultcheck: engine $$engine kill/resume" \
	       "(iters $$iters, REPRO_FAULTS=eval:$$fault)"; \
	  dune exec -- bin/dse_run.exe --engine $$engine --seed 7 \
	    --iters $$iters --warmup 200 --result $$clean >/dev/null; \
	  if REPRO_FAULTS=eval:$$fault dune exec -- bin/dse_run.exe \
	       --engine $$engine --seed 7 --iters $$iters --warmup 200 \
	       --checkpoint $$ck --checkpoint-every 1 >/dev/null 2>&1; then \
	    echo "faultcheck: $$engine: injected fault did not fire"; exit 1; \
	  fi; \
	  dune exec -- bin/dse_run.exe --engine $$engine --seed 7 \
	    --iters $$iters --warmup 200 --resume $$ck --result $$resumed \
	    >/dev/null; \
	  sed -e 's/, "eval_stats": .*/}/' -e 's/"wall_seconds": [^,]*, //' $$clean > $$clean.cmp; \
	  sed -e 's/, "eval_stats": .*/}/' -e 's/"wall_seconds": [^,]*, //' $$resumed > $$resumed.cmp; \
	  if ! diff $$clean.cmp $$resumed.cmp >/dev/null; then \
	    echo "faultcheck: $$engine: resumed result differs from clean run"; \
	    sed -e 's/, "eval_stats": .*/}/' -e 's/"wall_seconds": [^,]*, //' $$clean; \
	    sed -e 's/, "eval_stats": .*/}/' -e 's/"wall_seconds": [^,]*, //' $$resumed; \
	    exit 1; \
	  fi; \
	  rm -f $$ck $$clean $$clean.cmp $$resumed $$resumed.cmp; \
	done; echo "faultcheck all-engine kill/resume drill OK"
	@set -e; \
	  ck=$$(mktemp -u); clean=$$(mktemp); resumed=$$(mktemp); \
	  echo "faultcheck: racing portfolio kill/resume (--time-budget 1)"; \
	  dune exec -- bin/dse_run.exe --engine portfolio:race:sa+hill --seed 7 \
	    --iters 200000 --result $$clean >/dev/null; \
	  if dune exec -- bin/dse_run.exe --engine portfolio:race:sa+hill \
	       --seed 7 --iters 200000 --time-budget 1 \
	       --checkpoint $$ck --checkpoint-every 1 >/dev/null 2>&1; then \
	    echo "faultcheck: portfolio: time budget did not interrupt the race"; \
	    exit 1; \
	  fi; \
	  if [ ! -e $$ck ]; then \
	    echo "faultcheck: portfolio: interrupt flushed no checkpoint"; exit 1; fi; \
	  dune exec -- bin/dse_run.exe --engine portfolio:race:sa+hill --seed 7 \
	    --iters 200000 --resume $$ck --result $$resumed >/dev/null; \
	  sed -e 's/, "eval_stats": .*/}/' -e 's/"wall_seconds": [^,]*, //' $$clean > $$clean.cmp; \
	  sed -e 's/, "eval_stats": .*/}/' -e 's/"wall_seconds": [^,]*, //' $$resumed > $$resumed.cmp; \
	  if ! diff $$clean.cmp $$resumed.cmp >/dev/null; then \
	    echo "faultcheck: portfolio: resumed race differs from clean run"; \
	    cat $$clean.cmp $$resumed.cmp; exit 1; \
	  fi; \
	  rm -f $$ck $$ck.m0 $$ck.m1 $$clean $$clean.cmp $$resumed $$resumed.cmp; \
	  echo "faultcheck racing-portfolio kill/resume drill OK"
	@set -e; for seed in 1 2 3; do \
	  spool=$$(mktemp -d); \
	  echo "faultcheck: serve drill seed $$seed (REPRO_FAULTS=job:1)"; \
	  mkdir -p $$spool/jobs; \
	  for j in 1 2 3; do \
	    printf '{"app": "motion_detection", "iters": 200, "warmup": 50, "seed": %d}\n' \
	      $$((seed * 10 + j)) > $$spool/jobs/job$$j.json; \
	  done; \
	  if REPRO_FAULTS=job:1 dune exec -- bin/dse_serve.exe $$spool --once \
	       >/dev/null 2>&1; then \
	    echo "faultcheck: injected job fault did not fire"; exit 1; \
	  fi; \
	  dune exec -- bin/dse_serve.exe $$spool --once >/dev/null 2>&1; \
	  for j in 1 2 3; do \
	    r=$$spool/results/job$$j.json; f=$$spool/failed/job$$j.json; \
	    if [ -e $$r ] && [ -e $$f ]; then \
	      echo "faultcheck: job$$j ran twice"; exit 1; fi; \
	    if [ ! -e $$r ] && [ ! -e $$f ]; then \
	      echo "faultcheck: job$$j lost"; exit 1; fi; \
	  done; \
	  if [ -n "$$(find $$spool/jobs $$spool/work -type f)" ]; then \
	    echo "faultcheck: spool not drained"; exit 1; fi; \
	  rm -rf $$spool; \
	done; echo "faultcheck serve drill OK"
	@set -e; \
	  spool=$$(mktemp -d); clean=$$(mktemp -d); \
	  job='{"app": "motion_detection", "engine": "sa", "iters": 5000, "seed": 9}'; \
	  echo "faultcheck: lease-reclaim drill (REPRO_FAULTS=eval:700)"; \
	  mkdir -p $$spool/jobs $$clean/jobs; \
	  echo "$$job" > $$spool/jobs/drill.json; \
	  echo "$$job" > $$clean/jobs/drill.json; \
	  dune exec -- bin/dse_serve.exe $$clean --once --checkpoint-every 50 \
	    >/dev/null 2>&1; \
	  if REPRO_FAULTS=eval:700 dune exec -- bin/dse_serve.exe $$spool --once \
	       --lease-ttl 2 --checkpoint-every 50 >/dev/null 2>&1; then \
	    echo "faultcheck: injected eval fault did not kill the daemon"; exit 1; \
	  fi; \
	  if [ ! -e $$spool/work/drill.json ] || [ ! -e $$spool/work/drill.claim ]; then \
	    echo "faultcheck: crash left no stamped claim behind"; exit 1; fi; \
	  if [ ! -e $$spool/work/drill.ckpt ]; then \
	    echo "faultcheck: crash left no checkpoint behind"; exit 1; fi; \
	  dune exec -- bin/dse_serve.exe $$spool --once --checkpoint-every 50 \
	    >/dev/null 2>&1; \
	  if [ ! -e $$spool/results/drill.json ]; then \
	    echo "faultcheck: reclaimed job never completed"; exit 1; fi; \
	  crc() { sed -n 's/.*"solution": "\([0-9a-f]*\)".*/\1/p' $$1; }; \
	  a=$$(crc $$spool/results/drill.json); b=$$(crc $$clean/results/drill.json); \
	  if [ -z "$$a" ] || [ "$$a" != "$$b" ]; then \
	    echo "faultcheck: reclaimed result differs from clean run ($$a vs $$b)"; \
	    exit 1; \
	  fi; \
	  rm -rf $$spool $$clean; \
	  echo "faultcheck lease-reclaim drill OK"; \
	echo "faultcheck OK"

# Seeded chaos drill over the fleet protocol: daemons killed mid-job,
# corrupted checkpoint/result writes, a clock-skewed remote claim, an
# fsck pass crashed mid-repair, then a multi-daemon drain — asserting
# no job lost or duplicated, bit-identical resumed solutions and fsck
# converging in one pass.  Equal seeds replay identical drills.
chaoscheck: build
	@set -e; for seed in 1 2 3; do \
	  echo "chaoscheck: seed $$seed"; \
	  dune exec -- test/chaos/chaos_main.exe $$seed; \
	done; echo "chaoscheck OK"

clean:
	dune clean
