.PHONY: all build test bench bench-smoke bench-full examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

# Tiny-budget pass over every experiment: exercises each code path and
# the BENCH_*.json emission in well under a minute.
bench-smoke:
	BENCH_RUNS=1 BENCH_ITERS=300 BENCH_FIG2_ITERS=1500 \
	BENCH_COMPARE_ITERS=2000 BENCH_GA_GENERATIONS=5 BENCH_GA_POPULATION=30 \
	BENCH_RANDOM_SAMPLES=500 BENCH_HILL_MOVES=1000 BENCH_TABU_ITERS=200 \
	BENCH_RESTARTS_ITERS=1500 dune exec bench/main.exe

# Paper-scale Fig. 3 protocol (100 runs per device size)
bench-full:
	BENCH_RUNS=100 dune exec bench/main.exe -- fig3

examples:
	dune exec examples/quickstart.exe
	dune exec examples/motion_detection.exe
	dune exec examples/custom_architecture.exe
	dune exec examples/sdf_pipeline.exe
	dune exec examples/heterogeneous_soc.exe
	dune exec examples/video_phone.exe

clean:
	dune clean
