(* Quickstart: describe a small application, a reconfigurable platform,
   and run the explorer.

     dune exec examples/quickstart.exe
*)

open Repro_taskgraph
open Repro_arch

let () =
  (* 1. Describe the application: four tasks in a diamond.  Each task
     has a software time and a set of hardware implementations (area in
     CLBs, time in ms). *)
  let task id name sw_time impls =
    Task.make ~id ~name ~functionality:name ~sw_time
      ~impls:(List.map (fun (clbs, hw_time) -> { Task.clbs; hw_time }) impls)
  in
  let tasks =
    [
      task 0 "split" 2.0 [ (50, 1.0); (100, 0.6) ];
      task 1 "left" 6.0 [ (80, 1.5); (160, 0.9) ];
      task 2 "right" 5.0 [ (80, 1.4); (160, 0.8) ];
      task 3 "join" 2.0 [ (50, 1.1); (100, 0.7) ];
    ]
  in
  let edge src dst kbytes = { App.src; dst; kbytes } in
  let edges = [ edge 0 1 10.0; edge 0 2 10.0; edge 1 3 10.0; edge 2 3 10.0 ] in
  let app = App.make ~name:"diamond" ~deadline:8.0 ~tasks ~edges () in

  (* 2. Describe the platform: a processor and a small DRLC behind a
     shared bus. *)
  let platform =
    Platform.make ~name:"demo"
      ~processor:(Resource.processor "cpu")
      ~rc:(Resource.reconfigurable ~n_clb:200 ~reconfig_ms_per_clb:0.0225 "fpga")
      ~bus:Platform.default_bus ()
  in

  (* 3. Explore.  The quality knob trades computing time for solution
     quality; 0.5 is plenty for four tasks. *)
  let config = Repro_dse.Explorer.quality_config ~seed:42 0.5 in
  let result = Repro_dse.Explorer.explore config app platform in

  Format.printf "%a@." App.pp_summary app;
  Format.printf "best makespan: %.3f ms (started from %.3f ms)@."
    result.Repro_dse.Explorer.best_cost result.Repro_dse.Explorer.initial_cost;
  Format.printf "%a@." Repro_dse.Solution.pp result.Repro_dse.Explorer.best;
  match Repro_sched.Gantt.render (Repro_dse.Solution.spec result.Repro_dse.Explorer.best) with
  | Some gantt -> print_string gantt
  | None -> print_endline "(no feasible schedule)"
