(* Beyond the paper's 1-processor experiments: the general model of §3
   allows several processors.  Map the motion-detection study onto an
   ARM + DSP + FPGA SoC and compare with the paper's ARM + FPGA.

     dune exec examples/heterogeneous_soc.exe
*)

open Repro_arch
module Md = Repro_workloads.Motion_detection
module Explorer = Repro_dse.Explorer
module Solution = Repro_dse.Solution
module Annealer = Repro_anneal.Annealer

let explore app platform =
  let config =
    {
      Explorer.anneal = { Annealer.default_config with seed = 9 };
      moves = Repro_dse.Moves.fixed_architecture;
      objective = Explorer.Makespan;
    }
  in
  Explorer.explore config app platform

let () =
  let app = Md.app () in
  let arm_fpga = Md.platform ~n_clb:400 () in
  (* Same FPGA plus a DSP that runs the estimates 1.5x faster than the
     ARM922 (typical for the filtering-heavy kernels). *)
  let arm_dsp_fpga =
    Platform.make ~name:"arm_dsp_virtexE"
      ~processor:(Resource.processor ~cost:10.0 "ARM922")
      ~rc:
        (Resource.reconfigurable ~cost:4.0 ~n_clb:400
           ~reconfig_ms_per_clb:Md.reconfig_ms_per_clb "VirtexE")
      ~extra:[ Resource.processor ~cost:6.0 ~speed:1.5 "C55x_DSP" ]
      ~bus:{ Platform.kb_per_ms = 80.0; latency_ms = 0.05 }
      ()
  in
  List.iter
    (fun platform ->
      let result = explore app platform in
      let eval = result.Explorer.best_eval in
      let sw_loads =
        List.map
          (fun order ->
            List.fold_left
              (fun acc v ->
                acc
                +. (Repro_taskgraph.App.task app v).Repro_taskgraph.Task.sw_time)
              0.0 order)
          (Solution.sw_orders result.Explorer.best)
      in
      Format.printf
        "@[<v>%a@,makespan %.1f ms (%d context(s)), deadline 40 ms %s@,\
         software load per processor: %s ms@,@]@."
        Platform.pp platform result.Explorer.best_cost
        eval.Repro_sched.Searchgraph.n_contexts
        (if Explorer.meets_deadline app eval then "met" else "missed")
        (String.concat " / "
           (List.map (fun l -> Printf.sprintf "%.1f" l) sw_loads)))
    [ arm_fpga; arm_dsp_fpga ]
