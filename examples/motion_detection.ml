(* The paper's case study end to end: explore the 28-task motion
   detection application on the ARM922 + Virtex-E platform, check the
   40 ms real-time constraint, and show the schedule.

     dune exec examples/motion_detection.exe
*)

module Md = Repro_workloads.Motion_detection
module Explorer = Repro_dse.Explorer
module Solution = Repro_dse.Solution

let () =
  let app = Md.app () in
  let platform = Md.platform ~n_clb:2000 () in
  Format.printf "%a@.@." Repro_taskgraph.App.pp_summary app;
  Format.printf "%a@.@." Repro_arch.Platform.pp platform;

  let trace = Repro_dse.Trace.create ~every:100 () in
  let config = Explorer.default_config ~seed:7 () in
  let result = Explorer.explore ~trace config app platform in

  let eval = result.Explorer.best_eval in
  Format.printf
    "explored %d iterations (%.2f s): makespan %.1f ms, %d context(s)@."
    result.Explorer.iterations_run result.Explorer.wall_seconds
    eval.Repro_sched.Searchgraph.makespan eval.Repro_sched.Searchgraph.n_contexts;
  Format.printf "constraint 40 ms: %s@."
    (if Explorer.meets_deadline app eval then "MET" else "MISSED");
  let periodic =
    Repro_sched.Periodic.analyze (Solution.spec result.Explorer.best)
  in
  Format.printf
    "as a pipeline period (one image every 40 ms): sustainable from %.1f ms \
     (bottleneck %s)@.@."
    periodic.Repro_sched.Periodic.min_initiation_interval
    periodic.Repro_sched.Periodic.bottleneck;
  Format.printf "%a@." Solution.pp result.Explorer.best;
  (match Repro_sched.Gantt.render (Solution.spec result.Explorer.best) with
   | Some gantt -> print_string gantt
   | None -> ());
  (* Persist the iteration trace (Fig. 2 data) next to the binary. *)
  Repro_dse.Trace.to_csv trace "motion_detection_trace.csv";
  Format.printf "@.trace written to motion_detection_trace.csv (%d points)@."
    (Repro_dse.Trace.length trace)
