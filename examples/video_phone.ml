(* Multi-mode mapping (the conclusion's "multiple models of
   computation" direction): a video phone alternates between a capture
   mode and a playback mode that share image kernels.  Hardware is
   synthesized once — the spatial partitioning and implementation
   choices are shared — while each mode gets its own contexts and
   schedule.

     dune exec examples/video_phone.exe
*)

open Repro_taskgraph
open Repro_arch
module Multi_mode = Repro_dse.Multi_mode

let () =
  let t id name sw_time clbs =
    Task.make ~id ~name ~functionality:name ~sw_time
      ~impls:[ { Task.clbs; hw_time = sw_time /. 5.0 };
               { Task.clbs = 2 * clbs; hw_time = sw_time /. 8.0 } ]
  in
  let tasks =
    [
      t 0 "capture" 1.0 10;
      t 1 "color_convert" 3.0 20;
      t 2 "scale" 2.5 20;
      t 3 "encode" 6.0 60;
      t 4 "transmit" 0.8 10;
      t 5 "receive" 0.8 10;
      t 6 "decode" 5.0 50;
      t 7 "display" 1.0 10;
    ]
  in
  let edge src dst = { App.src; dst; kbytes = 8.0 } in
  let modes =
    [
      { Multi_mode.mode_name = "capture"; members = [ 0; 1; 2; 3; 4 ];
        edges = [ edge 0 1; edge 1 2; edge 2 3; edge 3 4 ]; deadline = 6.0 };
      { Multi_mode.mode_name = "playback"; members = [ 5; 6; 1; 2; 7 ];
        edges = [ edge 5 6; edge 6 1; edge 1 2; edge 2 7 ]; deadline = 6.0 };
    ]
  in
  let problem = Multi_mode.make_problem ~name:"videophone" ~tasks ~modes in
  let platform =
    Platform.make ~name:"soc"
      ~processor:(Resource.processor "cpu")
      ~rc:(Resource.reconfigurable ~n_clb:150 ~reconfig_ms_per_clb:0.005 "fpga")
      ~bus:{ Platform.kb_per_ms = 80.0; latency_ms = 0.05 }
      ()
  in
  let result = Multi_mode.explore ~seed:3 ~iterations:20_000 problem platform in
  Format.printf "shared partitioning (HW tasks): %s@."
    (String.concat ", "
       (List.filteri (fun v _ -> result.Multi_mode.assignment.Multi_mode.hw.(v))
          (List.map (fun (t : Task.t) -> t.Task.name) tasks)));
  List.iter
    (fun r ->
      Format.printf
        "mode %-8s: makespan %.2f ms (deadline %.1f ms, %s), %d context(s)@."
        r.Multi_mode.mode.Multi_mode.mode_name
        r.Multi_mode.eval.Repro_sched.Searchgraph.makespan
        r.Multi_mode.mode.Multi_mode.deadline
        (if r.Multi_mode.meets then "met" else "missed")
        r.Multi_mode.eval.Repro_sched.Searchgraph.n_contexts)
    result.Multi_mode.per_mode;
  Format.printf "worst slack: %.0f%% of the deadline@."
    (100.0 *. result.Multi_mode.worst_slack_ratio)
