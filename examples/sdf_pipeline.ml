(* The conclusion's announced extension: start from a synchronous
   dataflow (SDF) description, expand one iteration into a precedence
   task graph, and explore it like any other application.

     dune exec examples/sdf_pipeline.exe
*)

open Repro_taskgraph
module Explorer = Repro_dse.Explorer

let actor name functionality sw_time impls =
  {
    Sdf.name;
    functionality;
    sw_time;
    impls = List.map (fun (clbs, hw_time) -> { Task.clbs; hw_time }) impls;
  }

let () =
  (* A downsampling audio-style pipeline: source fires 4x per iteration,
     filter consumes 2 tokens per firing, sink consumes 4. *)
  let actors =
    [
      actor "source" "IO" 0.8 [ (30, 0.5) ];
      actor "filter" "FIR" 2.5 [ (80, 0.7); (160, 0.4) ];
      actor "decimate" "PixelOp" 1.2 [ (50, 0.5); (100, 0.3) ];
      actor "sink" "IO" 0.6 [ (30, 0.4) ];
    ]
  in
  let channel src dst produce consume kbytes_per_token =
    { Sdf.src; dst; produce; consume; initial_tokens = 0; kbytes_per_token }
  in
  let sdf =
    Sdf.make ~name:"downsampler" ~actors
      ~channels:
        [ channel 0 1 1 2 4.0; channel 1 2 1 1 4.0; channel 2 3 1 2 2.0 ]
  in
  (match Sdf.repetition_vector sdf with
   | Some q ->
     Format.printf "repetition vector: %a@."
       (Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.fprintf fmt " ")
          Format.pp_print_int)
       (Array.to_list q)
   | None -> Format.printf "inconsistent SDF graph@.");
  match Sdf.expand ~deadline:15.0 sdf with
  | Error msg -> Format.printf "expansion failed: %s@." msg
  | Ok app ->
    Format.printf "%a@.@." App.pp_summary app;
    let platform = Repro_workloads.Suite.platform_for app in
    let config = Explorer.quality_config ~seed:11 0.5 in
    let result = Explorer.explore config app platform in
    Format.printf "best makespan %.2f ms with %d context(s)@."
      result.Explorer.best_cost
      result.Explorer.best_eval.Repro_sched.Searchgraph.n_contexts
