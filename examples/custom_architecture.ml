(* Architecture exploration: instead of fixing the device, give the
   explorer a catalogue of FPGA sizes with costs and ask for the
   cheapest platform that meets the 40 ms constraint (the paper's
   general objective, realized through the m3/m4-style device moves).

     dune exec examples/custom_architecture.exe
*)

module Md = Repro_workloads.Motion_detection
module Explorer = Repro_dse.Explorer
module Moves = Repro_dse.Moves
module Solution = Repro_dse.Solution
module Annealer = Repro_anneal.Annealer

let () =
  let app = Md.app () in
  let catalogue =
    List.map (fun n_clb -> Md.platform ~n_clb ()) Md.fig3_sizes
  in
  let start = Md.platform ~n_clb:10000 () in
  let config =
    {
      Explorer.anneal = { Annealer.default_config with seed = 3 };
      moves = Moves.exploration catalogue;
      objective = Explorer.Cost_under_deadline { penalty_per_ms = 50.0 };
    }
  in
  let result = Explorer.explore config app start in
  let best = result.Explorer.best in
  let platform = Solution.platform best in
  let eval = result.Explorer.best_eval in
  Format.printf "cheapest deadline-meeting platform found:@.%a@."
    Repro_arch.Platform.pp platform;
  Format.printf
    "cost %.1f, makespan %.1f ms (deadline %.0f ms, %s), %d context(s)@."
    (Repro_arch.Platform.total_cost platform)
    eval.Repro_sched.Searchgraph.makespan Md.deadline_ms
    (if Explorer.meets_deadline app eval then "met" else "missed")
    eval.Repro_sched.Searchgraph.n_contexts
