(* Benchmark harness: one experiment per table/figure of the paper's
   evaluation (§5), plus the ablations called out in DESIGN.md and
   Bechamel micro-benchmarks of the evaluation primitives.

     dune exec bench/main.exe                 # every experiment
     dune exec bench/main.exe -- fig3 space   # a selection
     BENCH_RUNS=100 dune exec bench/main.exe -- fig3   # paper-scale

   Each experiment also writes a machine-readable BENCH_<name>.json
   ({"experiment", "wall_seconds", "metrics": {...}}) to the working
   directory, so runs can be tracked and compared without scraping the
   tables.  Iteration budgets come from BENCH_* environment knobs (see
   the env_int calls below); BENCH_JOBS sets the domain count for the
   parallel grids.

   Paper anchors are printed next to each measured series; we reproduce
   the *shape* (who wins, where the minima/plateaus fall), not the
   authors' absolute testbed numbers. *)

module Md = Repro_workloads.Motion_detection
module Suite_w = Repro_workloads.Suite
module Explorer = Repro_dse.Explorer
module Solution = Repro_dse.Solution
module Moves = Repro_dse.Moves
module Trace = Repro_dse.Trace
module Combinatorics = Repro_dse.Combinatorics
module Searchgraph = Repro_sched.Searchgraph
module Annealer = Repro_anneal.Annealer
module Schedule = Repro_anneal.Schedule
module Ga = Repro_baseline.Ga
module Greedy = Repro_baseline.Greedy
module Random_search = Repro_baseline.Random_search
module Hill_climb = Repro_baseline.Hill_climb
module Tabu = Repro_baseline.Tabu
module Engine = Repro_dse.Engine
module Portfolio = Repro_dse.Portfolio
module Stats = Repro_util.Stats
module Table = Repro_util.Table
module Rng = Repro_util.Rng
module Parallel = Repro_util.Parallel
module Clock = Repro_util.Clock
module App = Repro_taskgraph.App
module Task = Repro_taskgraph.Task

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string v with Failure _ -> default)
  | None -> default

let runs_per_point = env_int "BENCH_RUNS" 5
let iters_per_run = env_int "BENCH_ITERS" 6_000
let fig2_iters = env_int "BENCH_FIG2_ITERS" 50_000
let compare_iters = env_int "BENCH_COMPARE_ITERS" 50_000
let ga_generations = env_int "BENCH_GA_GENERATIONS" 120
let ga_population = env_int "BENCH_GA_POPULATION" 300
let random_samples = env_int "BENCH_RANDOM_SAMPLES" 5_000
let hill_moves = env_int "BENCH_HILL_MOVES" 10_000
let tabu_iters = env_int "BENCH_TABU_ITERS" 2_000
let restarts_iters = env_int "BENCH_RESTARTS_ITERS" 20_000
let micro_moves = env_int "BENCH_MICRO_MOVES" 20_000
let bench_jobs = env_int "BENCH_JOBS" (Parallel.default_jobs ())

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let anneal_config ~iterations ~seed =
  {
    Annealer.iterations;
    warmup_iterations = 1_200;
    schedule = Schedule.lam ~quality:(150.0 /. float_of_int iterations) ();
    seed;
    frozen_window = None;
  }

let explore_once ?trace ?(moves = Moves.fixed_architecture) ~iterations ~seed
    app platform =
  let config =
    { Explorer.anneal = anneal_config ~iterations ~seed; moves;
      objective = Explorer.Makespan }
  in
  Explorer.explore ?trace config app platform

(* ------------------------------------------------------------------ *)
(* Fig. 2: evolution of execution time and number of contexts along a
   typical run (2000 CLBs).                                            *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header "Fig. 2 — execution time and number of contexts vs iteration";
  Printf.printf
    "paper: warmup spans ~35-70 ms and 1-8 contexts; cooling drops below the\n\
     40 ms constraint and freezes at 18.1 ms with 3 contexts (2000 CLBs).\n\n";
  let app = Md.app () in
  let platform = Md.platform ~n_clb:2000 () in
  let trace = Trace.create () in
  let result = explore_once ~trace ~iterations:fig2_iters ~seed:5 app platform in
  let entries = Trace.entries trace in
  let warmup = List.filter (fun e -> e.Trace.iteration < 0) entries in
  let warmup_costs = List.map (fun e -> e.Trace.cost) warmup in
  let warmup_ctx = List.map (fun e -> float_of_int e.Trace.n_contexts) warmup in
  Printf.printf
    "warmup (infinite temperature): exec time %.1f..%.1f ms, contexts %.0f..%.0f\n"
    (List.fold_left Float.min infinity warmup_costs)
    (List.fold_left Float.max 0.0 warmup_costs)
    (List.fold_left Float.min infinity warmup_ctx)
    (List.fold_left Float.max 0.0 warmup_ctx);
  let table =
    Table.create
      [ ("iteration", Table.Right); ("exec ms", Table.Right);
        ("best ms", Table.Right); ("contexts", Table.Right);
        ("temperature", Table.Right) ]
  in
  List.iter
    (fun e ->
      Table.add_row table
        [
          Table.cell_int e.Trace.iteration;
          Table.cell_float e.Trace.cost;
          Table.cell_float e.Trace.best;
          Table.cell_int e.Trace.n_contexts;
          (if e.Trace.temperature = infinity then "inf"
           else Table.cell_float ~decimals:4 e.Trace.temperature);
        ])
    (Trace.downsample trace ~max_points:24);
  print_string (Table.render table);
  (* The figure itself: execution time [*] and context count [o],
     rescaled x5 like the paper's second axis) vs iteration. *)
  let sampled = Trace.downsample trace ~max_points:400 in
  let exec_series =
    List.map (fun e -> (float_of_int e.Trace.iteration, e.Trace.cost)) sampled
  in
  let context_series =
    List.map
      (fun e ->
        (float_of_int e.Trace.iteration, 5.0 *. float_of_int e.Trace.n_contexts))
      sampled
  in
  print_newline ();
  print_string
    (Repro_util.Ascii_chart.render ~width:72 ~height:14
       ~x_label:"iteration" ~y_label:"exec time ms (*) / 5 x contexts (o)"
       [
         { Repro_util.Ascii_chart.marker = 'o'; points = context_series };
         { Repro_util.Ascii_chart.marker = '*'; points = exec_series };
       ]);
  let eval = result.Explorer.best_eval in
  Printf.printf
    "final: %.1f ms with %d context(s) [paper: 18.1 ms, 3 contexts]; \
     constraint 40 ms %s\n"
    result.Explorer.best_cost eval.Searchgraph.n_contexts
    (if Explorer.meets_deadline app eval then "MET" else "MISSED");
  [
    ("best_cost_ms", result.Explorer.best_cost);
    ("contexts", float_of_int eval.Searchgraph.n_contexts);
    ("iterations_per_second",
     float_of_int result.Explorer.iterations_run
     /. Float.max result.Explorer.wall_seconds 1e-9);
    ("deadline_met", if Explorer.meets_deadline app eval then 1.0 else 0.0);
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 3: execution time, reconfiguration times and number of
   contexts vs FPGA size, averaged over several runs.                  *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "Fig. 3 — execution/reconfiguration time and contexts vs FPGA size";
  Printf.printf
    "paper (100 runs/point): sharp drop once a context holds several tasks,\n\
     minimum near 800 CLBs, slow growth to a plateau around 5000 CLBs where a\n\
     single context holds every hardware task; up to ~10 contexts for small\n\
     devices; total reconfiguration time roughly constant.\n\
     this run: %d run(s)/point, %d iterations (BENCH_RUNS/BENCH_ITERS),\n\
     %d job(s) (BENCH_JOBS).\n\n"
    runs_per_point iters_per_run bench_jobs;
  let app = Md.app () in
  let exec_by_index = ref [] in
  let reconfig_by_index = ref [] in
  let table =
    Table.create
      [ ("CLBs", Table.Right); ("exec ms", Table.Right); ("±", Table.Right);
        ("init rcfg", Table.Right); ("dyn rcfg", Table.Right);
        ("total rcfg", Table.Right); ("contexts", Table.Right);
        ("40ms met", Table.Right) ]
  in
  (* The (size x run) grid runs on BENCH_JOBS domains; each cell's seed
     depends only on its coordinates, and cells are folded per size in
     run order, so the table is identical for any job count. *)
  let sizes = Array.of_list Md.fig3_sizes in
  let cells =
    Parallel.map ~jobs:bench_jobs
      (Array.length sizes * runs_per_point)
      (fun i ->
        let n_clb = sizes.(i / runs_per_point) in
        let run = i mod runs_per_point in
        let platform = Md.platform ~n_clb () in
        let result =
          explore_once ~iterations:iters_per_run
            ~seed:(1 + (run * 7919) + n_clb)
            app platform
        in
        let eval = result.Explorer.best_eval in
        ( eval.Searchgraph.makespan, eval.Searchgraph.initial_reconfig,
          eval.Searchgraph.dynamic_reconfig, eval.Searchgraph.n_contexts,
          Explorer.meets_deadline app eval ))
  in
  let min_mean_exec = ref infinity in
  Array.iteri
    (fun size_index n_clb ->
      let exec = Stats.Running.create () in
      let init_r = Stats.Running.create () in
      let dyn_r = Stats.Running.create () in
      let ctx = Stats.Running.create () in
      let met = ref 0 in
      for run = 0 to runs_per_point - 1 do
        let makespan, init, dyn, n_contexts, meets =
          cells.((size_index * runs_per_point) + run)
        in
        Stats.Running.add exec makespan;
        Stats.Running.add init_r init;
        Stats.Running.add dyn_r dyn;
        Stats.Running.add ctx (float_of_int n_contexts);
        if meets then incr met
      done;
      min_mean_exec := Float.min !min_mean_exec (Stats.Running.mean exec);
      exec_by_index :=
        (float_of_int size_index, Stats.Running.mean exec) :: !exec_by_index;
      reconfig_by_index :=
        ( float_of_int size_index,
          Stats.Running.mean init_r +. Stats.Running.mean dyn_r )
        :: !reconfig_by_index;
      Table.add_row table
        [
          Table.cell_int n_clb;
          Table.cell_float (Stats.Running.mean exec);
          Table.cell_float (Stats.Running.stddev exec);
          Table.cell_float (Stats.Running.mean init_r);
          Table.cell_float (Stats.Running.mean dyn_r);
          Table.cell_float
            (Stats.Running.mean init_r +. Stats.Running.mean dyn_r);
          Table.cell_float ~decimals:1 (Stats.Running.mean ctx);
          Printf.sprintf "%d/%d" !met runs_per_point;
        ])
    sizes;
  print_string (Table.render table);
  (* Figure view: exec time [*] and total reconfiguration time [#]
     against the device-size index (the paper's x axis is effectively
     log-spaced). *)
  print_newline ();
  print_string
    (Repro_util.Ascii_chart.render ~width:72 ~height:12
       ~x_label:"device size index (100 .. 10000 CLBs)"
       ~y_label:"exec time ms (*) / total reconfiguration ms (#)"
       [
         { Repro_util.Ascii_chart.marker = '#';
           points = List.rev !reconfig_by_index };
         { Repro_util.Ascii_chart.marker = '*'; points = List.rev !exec_by_index };
       ]);
  [
    ("min_mean_exec_ms", !min_mean_exec);
    ("sizes", float_of_int (Array.length sizes));
    ("runs_per_point", float_of_int runs_per_point);
    ("jobs", float_of_int bench_jobs);
  ]

(* ------------------------------------------------------------------ *)
(* §5 comparison: adaptive SA vs the GA of [6] and extra baselines.    *)
(* ------------------------------------------------------------------ *)

let compare_methods () =
  header "§5 comparison — adaptive SA vs GA [6] and baselines (2000 CLBs)";
  Printf.printf
    "paper: SA best 18.1 ms in <10 s; GA of [6] 28 ms in ~4 min (population\n\
     300).  Two GA variants: with implementation-selection genes (stronger\n\
     than [6]'s published tool) and with spatial genes only, as [6]\n\
     describes — the latter reproduces the paper's SA-over-GA quality gap.\n\n";
  let app = Md.app () in
  let platform = Md.platform ~n_clb:2000 () in
  let table =
    Table.create
      [ ("method", Table.Left); ("makespan ms", Table.Right);
        ("contexts", Table.Right); ("time s", Table.Right);
        ("40 ms", Table.Left) ]
  in
  let row name makespan contexts seconds =
    Table.add_row table
      [
        name; Table.cell_float makespan; contexts;
        Table.cell_float ~decimals:2 seconds;
        (if makespan <= Md.deadline_ms then "met" else "missed");
      ]
  in
  row "all-software" (App.total_sw_time app) "0" 0.0;
  let sa = explore_once ~iterations:compare_iters ~seed:1 app platform in
  row "adaptive SA (this paper)" sa.Explorer.best_cost
    (string_of_int sa.Explorer.best_eval.Searchgraph.n_contexts)
    sa.Explorer.wall_seconds;
  let ga =
    Ga.run
      { Ga.default_config with seed = 1; population = ga_population;
        generations = ga_generations }
      app platform
  in
  row
    (Printf.sprintf "GA after [6] (pop %d)" ga_population)
    ga.Ga.best_eval.Searchgraph.makespan
    (string_of_int ga.Ga.best_eval.Searchgraph.n_contexts)
    ga.Ga.wall_seconds;
  let ga_basic =
    Ga.run
      { Ga.default_config with seed = 1; population = ga_population;
        generations = ga_generations; explore_impls = false }
      app platform
  in
  row "GA, spatial genes only (as [6])"
    ga_basic.Ga.best_eval.Searchgraph.makespan
    (string_of_int ga_basic.Ga.best_eval.Searchgraph.n_contexts)
    ga_basic.Ga.wall_seconds;
  let greedy = Greedy.run app platform in
  row
    (Printf.sprintf "greedy compute-to-HW (frac %.1f)" greedy.Greedy.hw_fraction)
    greedy.Greedy.eval.Searchgraph.makespan
    (string_of_int greedy.Greedy.eval.Searchgraph.n_contexts)
    greedy.Greedy.wall_seconds;
  let random =
    Random_search.run ~seed:1 ~samples:random_samples app platform
  in
  row
    (Printf.sprintf "random search (%d samples)" random_samples)
    random.Random_search.best_makespan "-" random.Random_search.wall_seconds;
  let hill =
    Hill_climb.run
      { Hill_climb.seed = 1; moves_per_climb = hill_moves; restarts = 5 }
      app platform
  in
  row "hill climbing (5 restarts)" hill.Hill_climb.best_makespan "-"
    hill.Hill_climb.wall_seconds;
  let tabu =
    Tabu.run
      { Tabu.seed = 1; iterations = tabu_iters; neighbourhood = 24;
        tenure = 20; aspiration = false }
      app platform
  in
  row "tabu search (tenure 20)" tabu.Tabu.best_makespan "-" tabu.Tabu.wall_seconds;
  Repro_baseline.Engines.register_all ();
  let portfolio =
    let engine =
      match Portfolio.of_spec "portfolio:race:sa+tabu" with
      | Ok e -> e
      | Error msg -> failwith msg
    in
    Engine.run engine
      (Engine.context ~app ~platform ~seed:1 ~iterations:compare_iters ())
  in
  row "racing portfolio (sa+tabu)" portfolio.Engine.best_cost "-"
    portfolio.Engine.wall_seconds;
  print_string (Table.render table);
  [
    ("sa_best_ms", sa.Explorer.best_cost);
    ("sa_seconds", sa.Explorer.wall_seconds);
    ("ga_best_ms", ga.Ga.best_eval.Searchgraph.makespan);
    ("ga_seconds", ga.Ga.wall_seconds);
    ("portfolio_best_ms", portfolio.Engine.best_cost);
    ("portfolio_seconds", portfolio.Engine.wall_seconds);
    ("iterations_per_second",
     float_of_int sa.Explorer.iterations_run
     /. Float.max sa.Explorer.wall_seconds 1e-9);
  ]

(* ------------------------------------------------------------------ *)
(* §5 solution-space counts.                                           *)
(* ------------------------------------------------------------------ *)

let space () =
  header "§5 solution-space counts (exact reproduction)";
  let table =
    Table.create
      [ ("quantity", Table.Left); ("measured", Table.Right);
        ("paper", Table.Right) ]
  in
  let row label measured paper =
    Table.add_row table [ label; string_of_int measured; string_of_int paper ]
  in
  row "28-chain, 2 context changes"
    (Combinatorics.context_change_combinations ~nodes:28 ~changes:2)
    378;
  row "28-chain, 6 context changes"
    (Combinatorics.context_change_combinations ~nodes:28 ~changes:6)
    376_740;
  row "total orders, first 20 nodes" (Combinatorics.interleavings [ 7; 6 ]) 1716;
  row "total orders, 28 nodes"
    (Combinatorics.motion_detection_total_orders ())
    348_840;
  row "combinations, 2 changes"
    (Combinatorics.motion_detection_combinations ~changes:2)
    131_861_520;
  row "combinations, 4 changes"
    (Combinatorics.motion_detection_combinations ~changes:4)
    7_142_499_000;
  print_string (Table.render table);
  []

(* ------------------------------------------------------------------ *)
(* Ablation: cooling schedules at an equal iteration budget.           *)
(* ------------------------------------------------------------------ *)

let ablation_schedule () =
  header "Ablation — cooling schedule (equal budget, motion detection)";
  let app = Md.app () in
  let platform = Md.platform ~n_clb:2000 () in
  let iterations = iters_per_run in
  let schedules =
    [
      ("lam (adaptive, the paper's)",
       fun () -> Schedule.lam ~quality:(150.0 /. float_of_int iterations) ());
      ("swartz (feedback target)", fun () -> Schedule.swartz ());
      ("geometric 0.95/100", fun () -> Schedule.geometric ());
      ("infinite (random walk)", fun () -> Schedule.infinite ());
    ]
  in
  let table =
    Table.create
      [ ("schedule", Table.Left); ("mean ms", Table.Right); ("±", Table.Right);
        ("best ms", Table.Right) ]
  in
  List.iter
    (fun (name, make_schedule) ->
      let stats = Stats.Running.create () in
      for run = 0 to runs_per_point - 1 do
        let config =
          {
            Explorer.anneal =
              {
                Annealer.iterations;
                warmup_iterations = 1_200;
                schedule = make_schedule ();
                seed = 100 + run;
                frozen_window = None;
              };
            moves = Moves.fixed_architecture;
            objective = Explorer.Makespan;
          }
        in
        let result = Explorer.explore config app platform in
        Stats.Running.add stats result.Explorer.best_cost
      done;
      Table.add_row table
        [
          name;
          Table.cell_float (Stats.Running.mean stats);
          Table.cell_float (Stats.Running.stddev stats);
          Table.cell_float (Stats.Running.min stats);
        ])
    schedules;
  print_string (Table.render table);
  []

(* ------------------------------------------------------------------ *)
(* Ablation: move families.                                            *)
(* ------------------------------------------------------------------ *)

let ablation_moves () =
  header "Ablation — move families (equal budget, motion detection)";
  Printf.printf
    "spatial-only disables implementation selection and the explicit\n\
     context-management moves, leaving m1/m2 (plus the ergodicity escape).\n\n";
  let app = Md.app () in
  let platform = Md.platform ~n_clb:2000 () in
  let variants =
    [
      ("full move set (paper)", Moves.fixed_architecture);
      ("spatial only (no impl/context moves)", Moves.spatial_only);
      ("no implementation move",
       { Moves.fixed_architecture with Moves.p_impl = 0.0 });
      ("no context moves",
       { Moves.fixed_architecture with Moves.p_new_context = 0.0;
         p_swap_contexts = 0.0 });
    ]
  in
  let table =
    Table.create
      [ ("moves", Table.Left); ("mean ms", Table.Right); ("±", Table.Right);
        ("best ms", Table.Right) ]
  in
  List.iter
    (fun (name, moves) ->
      let stats = Stats.Running.create () in
      for run = 0 to runs_per_point - 1 do
        let result =
          explore_once ~moves ~iterations:iters_per_run ~seed:(200 + run) app
            platform
        in
        Stats.Running.add stats result.Explorer.best_cost
      done;
      Table.add_row table
        [
          name;
          Table.cell_float (Stats.Running.mean stats);
          Table.cell_float (Stats.Running.stddev stats);
          Table.cell_float (Stats.Running.min stats);
        ])
    variants;
  print_string (Table.render table);
  []

(* ------------------------------------------------------------------ *)
(* Wider evaluation: the auxiliary workload suite.                     *)
(* ------------------------------------------------------------------ *)

let suite_eval () =
  header "Wider evaluation — auxiliary workloads";
  let table =
    Table.create
      [ ("application", Table.Left); ("tasks", Table.Right);
        ("all-SW ms", Table.Right); ("explored ms", Table.Right);
        ("min period ms", Table.Right); ("contexts", Table.Right);
        ("deadline", Table.Left) ]
  in
  List.iter
    (fun (name, make) ->
      let app = make () in
      let platform =
        if name = "motion_detection" then Md.platform ()
        else Suite_w.platform_for app
      in
      let result = explore_once ~iterations:iters_per_run ~seed:11 app platform in
      let eval = result.Explorer.best_eval in
      let periodic =
        Repro_sched.Periodic.analyze (Solution.spec result.Explorer.best)
      in
      Table.add_row table
        [
          name;
          Table.cell_int (App.size app);
          Table.cell_float (App.total_sw_time app);
          Table.cell_float result.Explorer.best_cost;
          Table.cell_float periodic.Repro_sched.Periodic.min_initiation_interval;
          Table.cell_int eval.Searchgraph.n_contexts;
          (match app.App.deadline with
           | Some d ->
             Printf.sprintf "%.0f ms %s" d
               (if Explorer.meets_deadline app eval then "met" else "missed")
           | None -> "none");
        ])
    Suite_w.named;
  print_string (Table.render table);
  []

(* ------------------------------------------------------------------ *)
(* Robustness: exploration quality vs application size on random graph
   families (beyond the paper: tool-scaling study).                    *)
(* ------------------------------------------------------------------ *)

let scaling () =
  header "Scaling — exploration quality vs application size (random graphs)";
  Printf.printf
    "speedup = all-software time / explored makespan; the idealized upper\n\
     bound ignores reconfiguration and communication entirely.\n\n";
  let table =
    Table.create
      [ ("family", Table.Left); ("tasks", Table.Right);
        ("all-SW ms", Table.Right); ("explored ms", Table.Right);
        ("speedup", Table.Right); ("bound", Table.Right);
        ("seconds", Table.Right) ]
  in
  let model = Repro_taskgraph.Generators.default_impl_model in
  let families =
    [
      ("chain 20", fun rng ->
        Repro_taskgraph.Generators.chain rng model ~length:20 ~mean_sw_time:2.0
          ~mean_kbytes:8.0);
      ("chain 60", fun rng ->
        Repro_taskgraph.Generators.chain rng model ~length:60 ~mean_sw_time:2.0
          ~mean_kbytes:8.0);
      ("layered 6x4", fun rng ->
        Repro_taskgraph.Generators.layered rng model ~layers:6 ~width:4
          ~edge_probability:0.4 ~mean_sw_time:2.0 ~mean_kbytes:8.0);
      ("layered 10x6", fun rng ->
        Repro_taskgraph.Generators.layered rng model ~layers:10 ~width:6
          ~edge_probability:0.3 ~mean_sw_time:2.0 ~mean_kbytes:8.0);
      ("series-parallel d5", fun rng ->
        Repro_taskgraph.Generators.series_parallel rng model ~depth:5
          ~mean_sw_time:2.0 ~mean_kbytes:8.0);
    ]
  in
  List.iter
    (fun (name, make) ->
      let rng = Rng.create 42 in
      let app = make rng in
      let platform = Suite_w.platform_for app in
      let result = explore_once ~iterations:iters_per_run ~seed:42 app platform in
      let all_sw = App.total_sw_time app in
      let bound =
        all_sw
        /. Float.max (App.hw_critical_path app) 1e-9
      in
      Table.add_row table
        [
          name;
          Table.cell_int (App.size app);
          Table.cell_float all_sw;
          Table.cell_float result.Explorer.best_cost;
          Table.cell_float (all_sw /. result.Explorer.best_cost);
          Table.cell_float bound;
          Table.cell_float ~decimals:2 result.Explorer.wall_seconds;
        ])
    families;
  print_string (Table.render table);
  []

(* ------------------------------------------------------------------ *)
(* Ablation: tabu tenure sensitivity (the paper's argument that tabu
   search needs tuning where the adaptive schedule does not).          *)
(* ------------------------------------------------------------------ *)

let ablation_tabu () =
  header "Ablation — tabu-search tenure sensitivity";
  Printf.printf
    "the paper contrasts its tuning-free adaptive schedule with tabu\n\
     search's tabu-list-size tuning; the sweep shows that sensitivity.\n\n";
  let app = Md.app () in
  (* A small device makes the landscape rugged enough for the tabu
     memory to matter. *)
  let platform = Md.platform ~n_clb:200 () in
  let table =
    Table.create
      [ ("tenure", Table.Right); ("mean ms", Table.Right); ("±", Table.Right) ]
  in
  List.iter
    (fun tenure ->
      (* Each tenure point is its own engine instance, run through the
         uniform contract — the same driver every other comparison
         uses. *)
      let engine = Tabu.engine_with ~tenure () in
      let stats = Stats.Running.create () in
      for run = 0 to runs_per_point - 1 do
        let ctx =
          Engine.context ~app ~platform ~seed:(300 + run)
            ~iterations:(tabu_iters / 2) ()
        in
        let outcome = Engine.run engine ctx in
        Stats.Running.add stats outcome.Engine.best_cost
      done;
      Table.add_row table
        [
          Table.cell_int tenure;
          Table.cell_float (Stats.Running.mean stats);
          Table.cell_float (Stats.Running.stddev stats);
        ])
    [ 1; 5; 20; 100; 500 ];
  print_string (Table.render table);
  Printf.printf
    "finding: with a sampled best-of-N neighbourhood and state-hash tabu,\n\
     this instance is robust to the tenure — the paper's tuning concern\n\
     applies to attribute-based tabu on harder landscapes; quality-wise\n\
     tabu matches the SA here (see compare).\n";
  []

(* ------------------------------------------------------------------ *)
(* Ablation: communication model — edge delays vs serialized bus
   transactions (§3.3's ordered transactions made explicit).           *)
(* ------------------------------------------------------------------ *)

let ablation_bus () =
  header "Ablation — bus model (edge delays vs serialized transactions)";
  Printf.printf
    "each row optimizes under one model and reports the solution under both;\n\
     the serialized model charges contention between concurrent transfers.\n\n";
  let app = Md.app () in
  let platform = Md.platform ~n_clb:2000 () in
  let table =
    Table.create
      [ ("optimized under", Table.Left); ("edge-delay ms", Table.Right);
        ("serialized ms", Table.Right); ("crossings", Table.Right) ]
  in
  let crossings solution =
    let spec = Solution.spec solution in
    List.length
      (List.filter
         (fun { App.src; dst; kbytes = _ } ->
           match (spec.Searchgraph.binding src, spec.Searchgraph.binding dst)
           with
           | Searchgraph.Sw, Searchgraph.Hw _ | Searchgraph.Hw _, Searchgraph.Sw
             ->
             true
           | Searchgraph.Sw, Searchgraph.Sw | Searchgraph.Hw _, Searchgraph.Hw _
           | Searchgraph.On_asic _, _ | _, Searchgraph.On_asic _
             ->
             false)
         (App.edges app))
  in
  let both solution =
    let spec = Solution.spec solution in
    let simple =
      match Searchgraph.evaluate spec with
      | Some e -> e.Searchgraph.makespan
      | None -> nan
    in
    let serialized =
      match Searchgraph.evaluate_serialized spec with
      | Some e -> e.Searchgraph.makespan
      | None -> nan
    in
    (simple, serialized)
  in
  List.iter
    (fun (name, objective) ->
      let config =
        { Explorer.anneal = anneal_config ~iterations:iters_per_run ~seed:3;
          moves = Moves.fixed_architecture; objective }
      in
      let result = Explorer.explore config app platform in
      let simple, serialized = both result.Explorer.best in
      Table.add_row table
        [
          name;
          Table.cell_float simple;
          Table.cell_float serialized;
          Table.cell_int (crossings result.Explorer.best);
        ])
    [
      ("edge delays (paper's estimate)", Explorer.Makespan);
      ("serialized transactions", Explorer.Makespan_serialized);
    ];
  print_string (Table.render table);
  []

(* ------------------------------------------------------------------ *)
(* Cost/performance frontier over the device catalogue (the paper's
   cost-minimization story as a designer-facing output).               *)
(* ------------------------------------------------------------------ *)

let pareto () =
  header "Cost/performance frontier — which device should a designer buy?";
  Printf.printf
    "the paper determines \"the size of the smallest device for which the\n\
     40 ms constraint is attained\" as a byproduct of Fig. 3; the frontier\n\
     makes the full cost/performance trade explicit.\n\n";
  let app = Md.app () in
  let catalogue = List.map (fun n_clb -> Md.platform ~n_clb ()) Md.fig3_sizes in
  let frontier =
    Explorer.cost_performance_frontier ~seed:1 ~iterations:iters_per_run
      ~jobs:bench_jobs app catalogue
  in
  let table =
    Table.create
      [ ("CLBs", Table.Right); ("cost", Table.Right);
        ("makespan ms", Table.Right); ("contexts", Table.Right);
        ("40 ms", Table.Left) ]
  in
  List.iter
    (fun { Explorer.platform; eval; cost; meets } ->
      Table.add_row table
        [
          Table.cell_int (Repro_arch.Platform.n_clb platform);
          Table.cell_float cost;
          Table.cell_float eval.Searchgraph.makespan;
          Table.cell_int eval.Searchgraph.n_contexts;
          (if meets then "met" else "missed");
        ])
    frontier;
  print_string (Table.render table);
  (match List.find_opt (fun p -> p.Explorer.meets) frontier with
   | Some cheapest ->
     Printf.printf "smallest device meeting 40 ms at this budget: %d CLBs\n"
       (Repro_arch.Platform.n_clb cheapest.Explorer.platform);
     [
       ("frontier_points", float_of_int (List.length frontier));
       ("smallest_meeting_clbs",
        float_of_int (Repro_arch.Platform.n_clb cheapest.Explorer.platform));
     ]
   | None ->
     Printf.printf "no catalogue device meets 40 ms at this budget\n";
     [ ("frontier_points", float_of_int (List.length frontier)) ])

(* ------------------------------------------------------------------ *)
(* Beyond the paper: multiprocessor platforms (the general model of
   section 3 allows several processors).                               *)
(* ------------------------------------------------------------------ *)

let multiproc () =
  header "Extension — second processor (general multiprocessor model)";
  Printf.printf
    "same FPGA, with and without an extra DSP running the software\n\
     estimates 1.5x faster; gains hinge on how much software load remains.\n\n";
  let table =
    Table.create
      [ ("application", Table.Left); ("1 CPU ms", Table.Right);
        ("CPU+DSP ms", Table.Right); ("gain %", Table.Right) ]
  in
  List.iter
    (fun (name, make) ->
      let app = make () in
      let n_clb = 400 in
      let single =
        Repro_arch.Platform.make ~name:"single"
          ~processor:(Repro_arch.Resource.processor ~cost:10.0 "cpu")
          ~rc:
            (Repro_arch.Resource.reconfigurable ~cost:8.0 ~n_clb
               ~reconfig_ms_per_clb:0.0225 "fpga")
          ~bus:{ Repro_arch.Platform.kb_per_ms = 80.0; latency_ms = 0.05 }
          ()
      in
      let dual =
        Repro_arch.Platform.make ~name:"dual"
          ~processor:(Repro_arch.Resource.processor ~cost:10.0 "cpu")
          ~rc:
            (Repro_arch.Resource.reconfigurable ~cost:8.0 ~n_clb
               ~reconfig_ms_per_clb:0.0225 "fpga")
          ~extra:[ Repro_arch.Resource.processor ~cost:6.0 ~speed:1.5 "dsp" ]
          ~bus:{ Repro_arch.Platform.kb_per_ms = 80.0; latency_ms = 0.05 }
          ()
      in
      let best platform =
        (explore_once ~iterations:iters_per_run ~seed:13 app platform)
          .Explorer.best_cost
      in
      let single_ms = best single and dual_ms = best dual in
      Table.add_row table
        [
          name;
          Table.cell_float single_ms;
          Table.cell_float dual_ms;
          Table.cell_float ~decimals:1
            ((single_ms -. dual_ms) /. single_ms *. 100.0);
        ])
    Suite_w.named;
  print_string (Table.render table);
  []

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the evaluation primitives.             *)
(* ------------------------------------------------------------------ *)

(* Moves/sec per move kind, incremental vs forced-rebuild evaluation.
   Each arm runs the annealer's rejected-move cycle — save, mutate,
   evaluate, undo — against the same starting solution with the same
   draw stream, using the annealer's own per-kind generators
   ([Moves.propose_kind]); the rebuild arm calls [Solution.invalidate]
   before every proposal so its evaluations are full builds.  Always
   undoing keeps the state (hence the kinds' preconditions) fixed, so
   the two arms walk identically and their final solutions must agree
   bit-for-bit. *)
let micro_move_matrix_for ~tag app platform alt_platform =
  let prefix = if tag = "" then "" else tag ^ "_" in
  header
    (Printf.sprintf
       "Structural-move matrix%s — %d tasks, %d draws/kind, incremental vs \
        rebuild (BENCH_MICRO_MOVES)"
       (if tag = "" then "" else " [" ^ tag ^ "]")
       (App.size app) micro_moves);
  (* A starting point with software tasks and several contexts.
     [Solution.random] packs hardware into as few contexts as the
     device allows (one, here), so the structural kinds need a richer
     start: move two mutually independent software tasks into fresh
     singleton contexts — independence keeps at least the swap of
     those two contexts acyclic, so every kind has feasible draws.
     The seed search keeps the recipe deterministic. *)
  let prepare s =
    let clo = Solution.closure s in
    let order = Solution.sw_order s in
    let independent a b =
      (not (Repro_sched.Closure.reaches clo a b))
      && not (Repro_sched.Closure.reaches clo b a)
    in
    let pair =
      List.find_map
        (fun a ->
          List.find_map
            (fun b -> if a < b && independent a b then Some (a, b) else None)
            order)
        order
    in
    match pair with
    | Some (a, b) when Solution.n_contexts s >= 1 ->
      Solution.insert_context s ~task:a ~at:(Solution.n_contexts s);
      Solution.insert_context s ~task:b ~at:(Solution.n_contexts s);
      Solution.n_contexts s >= 3
      && List.length (Solution.sw_order s) >= 4
      && Float.is_finite (Solution.makespan s)
    | _ -> false
  in
  let base_seed =
    let rec find seed =
      if prepare (Solution.random (Rng.create seed) app platform) then seed
      else find (seed + 1)
    in
    find 1
  in
  let mconfig = Moves.exploration [ platform; alt_platform ] in
  let kinds =
    [
      ("impl", Solution.Impl);
      ("sw_reorder", Solution.Sw_reorder);
      ("sw_migrate", Solution.Sw_migrate);
      ("ctx_migrate", Solution.Ctx_migrate);
      ("ctx_create", Solution.Ctx_create);
      ("ctx_swap", Solution.Ctx_swap);
      ("device", Solution.Platform_swap);
    ]
  in
  (* Each arm is a resumable closure over its own solution and RNG;
     the driver alternates chunks of the two arms so both sample the
     same machine conditions (frequency drift otherwise dominates the
     per-kind ratios). *)
  let make_arm ~rebuild kind =
    let rng = Rng.create 101 in
    let s = Solution.random (Rng.create base_seed) app platform in
    let ok = prepare s in
    assert ok;
    ignore (Solution.makespan s);
    let applied = ref 0 in
    let wall = ref 0.0 in
    let run chunk =
      let t0 = Clock.wall () in
      for _ = 1 to chunk do
        if rebuild then Solution.invalidate s;
        match Moves.propose_kind rng mconfig s kind with
        | Some undo ->
          incr applied;
          undo ()
        | None -> ()
      done;
      wall := !wall +. (Clock.wall () -. t0)
    in
    (run, wall, applied, s)
  in
  let run_arms kind =
    let run_i, wall_i, applied_i, s_i = make_arm ~rebuild:false kind in
    let run_r, wall_r, applied_r, s_r = make_arm ~rebuild:true kind in
    let chunk = max 1 (micro_moves / 10) in
    let rec go left =
      if left > 0 then begin
        let c = min chunk left in
        run_i c;
        run_r c;
        go (left - c)
      end
    in
    go micro_moves;
    ( (!wall_i, !applied_i, Solution.eval_stats s_i, Solution.encode s_i),
      (!wall_r, !applied_r, Solution.eval_stats s_r, Solution.encode s_r) )
  in
  Printf.printf
    "  %-12s %13s %13s %8s %11s %9s %9s %9s %7s\n" "kind" "incr moves/s"
    "rebld moves/s" "speedup" "nodes/rfsh" "edges/mv" "pairs/mv" "comm/mv"
    "regens";
  let metrics =
    List.concat_map
      (fun (name, kind) ->
        let (wall_i, applied_i, stats_i, final_i),
            (wall_r, applied_r, _stats_r, final_r) =
          run_arms kind
        in
        if applied_i <> applied_r || final_i <> final_r then
          failwith
            (Printf.sprintf
               "micro: %s%s: incremental and rebuild arms diverged" prefix name);
        let ks = Solution.kind_stats stats_i kind in
        let rate applied wall =
          float_of_int applied /. Float.max wall 1e-9
        in
        let per num den =
          if den = 0 then 0.0 else float_of_int num /. float_of_int den
        in
        let incr_rate = rate applied_i wall_i in
        let rebuild_rate = rate applied_r wall_r in
        let speedup = incr_rate /. Float.max rebuild_rate 1e-9 in
        Printf.printf
          "  %-12s %13.0f %13.0f %7.2fx %11.1f %9.1f %9.1f %9.1f %7d\n" name
          incr_rate rebuild_rate speedup
          (per ks.Solution.k_incr_nodes ks.Solution.k_incr_evals)
          (per ks.Solution.k_edges_edited applied_i)
          (per ks.Solution.k_pairs_emitted applied_i)
          (per ks.Solution.k_comm_patched applied_i)
          ks.Solution.k_pair_regens;
        [
          (prefix ^ name ^ "_moves_per_s_incr", incr_rate);
          (prefix ^ name ^ "_moves_per_s_rebuild", rebuild_rate);
          (prefix ^ name ^ "_speedup", speedup);
          (prefix ^ name ^ "_incr_evals", float_of_int ks.Solution.k_incr_evals);
          (prefix ^ name ^ "_nodes_per_incr_eval",
           per ks.Solution.k_incr_nodes ks.Solution.k_incr_evals);
          (prefix ^ name ^ "_edges_per_move",
           per ks.Solution.k_edges_edited applied_i);
          (prefix ^ name ^ "_pairs_per_move",
           per ks.Solution.k_pairs_emitted applied_i);
          (prefix ^ name ^ "_comm_patched_per_move",
           per ks.Solution.k_comm_patched applied_i);
          (prefix ^ name ^ "_pair_regens",
           float_of_int ks.Solution.k_pair_regens);
        ])
      kinds
  in
  Printf.printf "\n";
  metrics

(* The matrix on the 28-task case study, then on a >=128-node layered
   graph: the native-delta claim is that per-move cost tracks the move
   footprint, so the incremental-vs-rebuild gap must widen with size.
   Layer widths are drawn randomly, so the seed is searched
   deterministically until the generator actually crosses 128 nodes. *)
let micro_move_matrix () =
  let m28 =
    micro_move_matrix_for ~tag:"" (Md.app ()) (Md.platform ())
      (Md.platform ~n_clb:2000 ())
  in
  let model = Repro_taskgraph.Generators.default_impl_model in
  (* Wide and shallow — the parallel-workload shape whose move
     footprints stay local (a deep chain would make every downstream
     cone the whole graph, drowning the locality the deltas buy). *)
  let g_app =
    let rec find seed =
      let app =
        Repro_taskgraph.Generators.layered ~name:"layered128"
          (Rng.create seed) model ~layers:8 ~width:31 ~edge_probability:0.12
          ~mean_sw_time:2.0 ~mean_kbytes:8.0
      in
      if App.size app >= 128 then app else find (seed + 1)
    in
    find 1
  in
  (* Size the device for a handful of tasks per context, as in the
     case study, rather than [platform_for]'s 60%-of-total giant
     contexts. *)
  let g_platform =
    Repro_arch.Platform.with_rc_size (Suite_w.platform_for g_app) 600
  in
  let g_alt = Repro_arch.Platform.with_rc_size g_platform 1_200 in
  m28 @ micro_move_matrix_for ~tag:"g128" g_app g_platform g_alt

let micro () =
  header "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let app = Md.app () in
  let platform = Md.platform () in
  let base_solution =
    let rng = Rng.create 5 in
    Solution.random rng app platform
  in
  let test_evaluate =
    Test.make ~name:"searchgraph evaluate (28 tasks)"
      (Staged.stage (fun () ->
           let spec = Solution.spec base_solution in
           match Searchgraph.evaluate spec with
           | Some eval -> ignore eval.Searchgraph.makespan
           | None -> ()))
  in
  let move_rng = Rng.create 9 in
  let move_solution = Solution.snapshot base_solution in
  let test_move =
    Test.make ~name:"propose+undo move"
      (Staged.stage (fun () ->
           match
             Moves.propose move_rng Moves.fixed_architecture move_solution
           with
           | Some undo -> undo ()
           | None -> ()))
  in
  let test_closure =
    Test.make ~name:"closure of the task graph"
      (Staged.stage (fun () ->
           ignore (Repro_sched.Closure.of_graph app.App.graph)))
  in
  let random_rng = Rng.create 3 in
  let test_random_solution =
    Test.make ~name:"random initial solution"
      (Staged.stage (fun () -> ignore (Solution.random random_rng app platform)))
  in
  (* Incremental longest path: full solve vs Woodbury-style refresh of
     one changed node, on the case study's search graph. *)
  let lp_graph, lp_node_weight, lp_edge_weight =
    Searchgraph.build (Solution.spec base_solution)
  in
  (* Perturb a sink task (13, the tracking output): the affected cone
     is minimal, which is the annealing case the paper's Woodbury
     remark targets — a local move touching a local region. *)
  let perturb = ref 0.0 in
  let node_weight v = lp_node_weight v +. if v = 13 then !perturb else 0.0 in
  let lp_state =
    match
      Repro_sched.Longest_path.create lp_graph ~node_weight
        ~edge_weight:lp_edge_weight
    with
    | Some lp -> lp
    | None -> assert false (* specs of feasible solutions are acyclic *)
  in
  let test_lp_full =
    Test.make ~name:"longest path, full recompute"
      (Staged.stage (fun () -> Repro_sched.Longest_path.recompute lp_state))
  in
  let test_lp_refresh =
    Test.make ~name:"longest path, incremental refresh"
      (Staged.stage (fun () ->
           perturb := if !perturb = 0.0 then 0.3 else 0.0;
           Repro_sched.Longest_path.refresh lp_state [ 13 ]))
  in
  let test_serialized =
    Test.make ~name:"searchgraph evaluate_serialized"
      (Staged.stage (fun () ->
           ignore (Searchgraph.evaluate_serialized (Solution.spec base_solution))))
  in
  let tests =
    [ test_evaluate; test_serialized; test_move; test_closure;
      test_random_solution; test_lp_full; test_lp_refresh ]
  in
  let benchmark test =
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock (benchmark test) in
      Hashtbl.iter
        (fun name ols_result ->
          let nanoseconds =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> est
            | Some _ | None -> nan
          in
          Printf.printf "  %-40s %12.1f ns/run\n" name nanoseconds)
        results)
    tests;
  micro_move_matrix ()

(* ------------------------------------------------------------------ *)
(* Parallel restarts: wall-clock of jobs=1 vs jobs=4 on the same four
   chains, with the determinism contract checked on the spot.          *)
(* ------------------------------------------------------------------ *)

let restarts_bench () =
  header "Parallel restarts — 4 chains, jobs=1 vs jobs=4";
  Printf.printf
    "same seeds, same winner selection: the parallel run must produce the\n\
     bit-identical best solution and cost list.  speedup tracks the number\n\
     of cores the container actually has (this host: %d).\n\
     this run: %d iterations/chain (BENCH_RESTARTS_ITERS).\n\n"
    (Domain.recommended_domain_count ())
    restarts_iters;
  let app = Md.app () in
  let platform = Md.platform ~n_clb:2000 () in
  let config =
    { Explorer.anneal = anneal_config ~iterations:restarts_iters ~seed:21;
      moves = Moves.fixed_architecture; objective = Explorer.Makespan }
  in
  let timed jobs =
    let t0 = Clock.wall () in
    let best, costs =
      Explorer.explore_restarts ~jobs ~restarts:4 config app platform
    in
    (Clock.wall () -. t0, best, costs)
  in
  let wall1, best1, costs1 = timed 1 in
  let wall4, best4, costs4 = timed 4 in
  let identical =
    costs1 = costs4
    && best1.Explorer.best_cost = best4.Explorer.best_cost
    && Format.asprintf "%a" Solution.pp best1.Explorer.best
       = Format.asprintf "%a" Solution.pp best4.Explorer.best
  in
  if not identical then
    failwith "restarts_bench: jobs=4 diverged from jobs=1";
  let stats = Solution.eval_stats best4.Explorer.best in
  let per_eval evals nodes =
    if evals = 0 then 0.0 else float_of_int nodes /. float_of_int evals
  in
  Printf.printf
    "jobs=1: %.2f s   jobs=4: %.2f s   speedup %.2fx   best %.2f ms \
     (identical: yes)\n"
    wall1 wall4 (wall1 /. Float.max wall4 1e-9)
    best1.Explorer.best_cost;
  Printf.printf
    "incremental evaluation on the winning chain: %d full evals \
     (%.1f nodes/eval), %d incremental (%.1f nodes/eval), %d edges edited\n"
    stats.Solution.full_evals
    (per_eval stats.Solution.full_evals stats.Solution.full_nodes)
    stats.Solution.incr_evals
    (per_eval stats.Solution.incr_evals stats.Solution.incr_nodes)
    stats.Solution.edges_edited;
  [
    ("wall_jobs1", wall1);
    ("wall_jobs4", wall4);
    ("speedup", wall1 /. Float.max wall4 1e-9);
    ("best_cost_ms", best1.Explorer.best_cost);
    ("iterations_per_second",
     float_of_int (4 * restarts_iters) /. Float.max wall4 1e-9);
    ("identical", 1.0);
    ("full_nodes_per_eval",
     per_eval stats.Solution.full_evals stats.Solution.full_nodes);
    ("incr_nodes_per_eval",
     per_eval stats.Solution.incr_evals stats.Solution.incr_nodes);
    ("edges_edited", float_of_int stats.Solution.edges_edited);
  ]

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("compare", compare_methods);
    ("space", space);
    ("ablation_schedule", ablation_schedule);
    ("ablation_moves", ablation_moves);
    ("ablation_bus", ablation_bus);
    ("ablation_tabu", ablation_tabu);
    ("pareto", pareto);
    ("scaling", scaling);
    ("multiproc", multiproc);
    ("suite", suite_eval);
    ("restarts", restarts_bench);
    ("micro", micro);
  ]

let json_field (key, value) =
  Printf.sprintf "%S: %s" key
    (if Float.is_finite value then Printf.sprintf "%g" value else "null")

let write_json name ~wall metrics =
  let path = Printf.sprintf "BENCH_%s.json" name in
  (* Atomic write: a killed benchmark run never leaves a truncated
     BENCH_*.json behind. *)
  Repro_util.Atomic_io.write_file path (fun oc ->
      Printf.fprintf oc
        "{\"experiment\": %S, \"wall_seconds\": %g, \"metrics\": {%s}}\n" name
        wall
        (String.concat ", " (List.map json_field metrics)));
  path

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | [ _ ] | [] -> List.map fst experiments
  in
  Printf.printf
    "DSE-for-DRA benchmark harness (Miramond & Delosme, DATE'05 reproduction)\n";
  Printf.printf "experiments: %s\n" (String.concat ", " requested);
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
        let t0 = Clock.wall () in
        let metrics = run () in
        let wall = Clock.wall () -. t0 in
        let path = write_json name ~wall metrics in
        Printf.printf "\n[%s: %.2f s, wrote %s]\n" name wall path
      | None ->
        Printf.printf "unknown experiment %S (available: %s)\n" name
          (String.concat ", " (List.map fst experiments)))
    requested
